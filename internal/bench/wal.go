package bench

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	ctk "repro"
	"repro/internal/stats"
)

// WALCell is one persistence mode's measurement on the shared publish
// timeline: per-publish latency (the stall picture), what the
// durability machinery did meanwhile, and — for the WAL modes — how
// long a cold restart takes to recover the final state.
type WALCell struct {
	Series string
	// Per-publish latency (ms). The tail is the headline: online
	// background snapshots should leave it close to the undurable
	// baseline, while the sync-save series pays a full blocking
	// WriteSnapshot inside the publish that trips the cadence.
	PubMeanMS, PubP50MS, PubP99MS, PubMaxMS float64
	// Snapshots is how many snapshot files the mode retained;
	// WALSegments/WALBytes/NextLSN describe the log at shutdown.
	Snapshots   int
	WALSegments int
	WALBytes    int64
	NextLSN     uint64
	// RecoveryMS times a cold ctk.Open on the mode's data directory
	// (newest snapshot + WAL replay); Replayed is the WAL tail it had
	// to re-apply. Zero for the modes with nothing to recover from.
	RecoveryMS float64
	Replayed   int
}

// WALResult is the ablwal experiment: no durability, WAL with
// interval-batched fsync, WAL with per-op fsync, and the legacy
// stop-the-world snapshot save, all replaying the identical
// register-then-publish timeline.
type WALResult struct {
	Title   string
	Queries int // registered queries
	Events  int // timed publishes
	// SaveEvery is the snapshot cadence in logged operations (the WAL
	// modes' SnapshotOps threshold and the sync-save series' blocking
	// save period).
	SaveEvery int
	Cells     []WALCell
}

// WALTitle is the ablwal experiment's title, shared by the harness
// report and the CLI's experiment listing.
const WALTitle = "Extension — durability: WAL fsync policies and online snapshots vs stop-the-world saves"

// The ablwal series labels.
const (
	walSeriesNone     = "none"
	walSeriesInterval = "wal-interval"
	walSeriesAlways   = "wal-always"
	walSeriesSyncSave = "sync-save"
)

// walQueries sizes the registered query set: engine-level registration
// is O(|q|) but every register is also a logged (and possibly fsynced)
// WAL record, so the set stays far below the vector-level sweeps.
func walQueries(sc Scale) int {
	return max(256, sc.BaseQueries/50)
}

// walEvents sizes the timed publish window — enough samples that a p99
// over it is meaningful and the snapshot cadence trips several times.
func walEvents(sc Scale) int {
	return max(300, 5*sc.Measure)
}

// walWorkload is the deterministic text-level timeline every series
// replays: registrations, an untimed warm prefix, then the timed
// publishes.
type walWorkload struct {
	queries []string
	k       int
	warm    []string
	timed   []string
	rate    float64
}

// makeWALWorkload synthesizes the timeline from the scale's seed: a
// Zipf word distribution over the synthetic vocabulary ("t0".."tn-1",
// the same shape the corpus generator uses), so frequent words make
// queries and documents actually collide.
func makeWALWorkload(sc Scale) walWorkload {
	rng := rand.New(rand.NewSource(sc.Seed + 37))
	zipf := rand.NewZipf(rng, 1.1, 1.0, uint64(sc.VocabSize-1))
	word := func() string { return fmt.Sprintf("t%d", zipf.Uint64()) }
	doc := func(words int) string {
		var sb strings.Builder
		for i := 0; i < words; i++ {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(word())
		}
		return sb.String()
	}

	w := walWorkload{k: 10, rate: sc.Rate}
	n := walQueries(sc)
	w.queries = make([]string, n)
	for i := range w.queries {
		w.queries[i] = doc(2 + rng.Intn(3))
	}
	events := walEvents(sc)
	w.warm = make([]string, events/5)
	for i := range w.warm {
		w.warm[i] = doc(20 + rng.Intn(20))
	}
	w.timed = make([]string, events)
	for i := range w.timed {
		w.timed[i] = doc(20 + rng.Intn(20))
	}
	return w
}

// queryState is one query's final answer, captured for the parity
// gates (across series, and across a recovery of the same series).
type queryState struct {
	seq  uint64
	docs []uint64
	// scores compared exactly: replay determinism is the whole point.
	scores []float64
}

// captureAll reads every query's final ResultsSeq.
func captureAll(e *ctk.Engine, n int) ([]queryState, error) {
	out := make([]queryState, n)
	for i := 0; i < n; i++ {
		rs, seq, err := e.ResultsSeq(ctk.QueryID(i))
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		st := queryState{seq: seq}
		for _, r := range rs {
			st.docs = append(st.docs, r.DocID)
			st.scores = append(st.scores, r.Score)
		}
		out[i] = st
	}
	return out, nil
}

// diffStates returns a description of the first divergence, or "".
func diffStates(a, b []queryState) string {
	if len(a) != len(b) {
		return fmt.Sprintf("query count %d vs %d", len(a), len(b))
	}
	for q := range a {
		x, y := a[q], b[q]
		if x.seq != y.seq {
			return fmt.Sprintf("query %d seq %d vs %d", q, x.seq, y.seq)
		}
		if len(x.docs) != len(y.docs) {
			return fmt.Sprintf("query %d result count %d vs %d", q, len(x.docs), len(y.docs))
		}
		for i := range x.docs {
			if x.docs[i] != y.docs[i] || x.scores[i] != y.scores[i] {
				return fmt.Sprintf("query %d rank %d (%d/%g vs %d/%g)",
					q, i, x.docs[i], x.scores[i], y.docs[i], y.scores[i])
			}
		}
	}
	return ""
}

// RunWAL measures the ablwal experiment at the given scale. Every
// series replays the identical timeline; the final per-query results
// are parity-checked across all series (durability must not change
// answers), and each WAL series is additionally recovered from disk
// after Close and parity-checked against its own pre-shutdown state
// (the crash-recovery contract, timed). dir hosts the data
// directories; empty means a temp dir removed on return.
func RunWAL(sc Scale, dir string, out io.Writer) (*WALResult, error) {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "ctkbench-wal-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	w := makeWALWorkload(sc)
	res := &WALResult{
		Title:     WALTitle,
		Queries:   len(w.queries),
		Events:    len(w.timed),
		SaveEvery: max(50, len(w.timed)/3),
	}

	var baseline []queryState
	for _, series := range []string{walSeriesNone, walSeriesInterval, walSeriesAlways, walSeriesSyncSave} {
		cell, final, err := runWALCell(series, filepath.Join(dir, series), w, res.SaveEvery)
		if err != nil {
			return nil, fmt.Errorf("bench ablwal: %s: %w", series, err)
		}
		if series == walSeriesNone {
			baseline = final
		} else if d := diffStates(baseline, final); d != "" {
			return nil, fmt.Errorf("bench ablwal: parity: %s diverged from %s: %s", series, walSeriesNone, d)
		}
		res.Cells = append(res.Cells, cell)
		if out != nil {
			fmt.Fprintf(out, "  %-12s pub mean=%7.3fms p99=%8.3fms max=%8.3fms  snaps=%d recover=%7.1fms replayed=%d\n",
				cell.Series, cell.PubMeanMS, cell.PubP99MS, cell.PubMaxMS, cell.Snapshots, cell.RecoveryMS, cell.Replayed)
		}
	}
	return res, nil
}

// runWALCell replays the timeline under one persistence mode and
// returns the cell plus the final per-query states for the parity
// gates.
func runWALCell(series, dir string, w walWorkload, saveEvery int) (WALCell, []queryState, error) {
	cell := WALCell{Series: series}
	opts := ctk.Options{Algorithm: "MRIO", Lambda: defaultLambda, DefaultK: w.k}
	durable := false
	switch series {
	case walSeriesInterval:
		opts.Durability = ctk.Durability{Dir: dir, Fsync: ctk.FsyncInterval, SnapshotOps: saveEvery}
		durable = true
	case walSeriesAlways:
		opts.Durability = ctk.Durability{Dir: dir, Fsync: ctk.FsyncAlways, SnapshotOps: saveEvery}
		durable = true
	}

	var (
		e   *ctk.Engine
		err error
	)
	if durable {
		e, err = ctk.Open(opts)
	} else {
		e, err = ctk.New(opts)
	}
	if err != nil {
		return cell, nil, err
	}
	closed := false
	defer func() {
		if !closed {
			e.Close()
		}
	}()

	for _, q := range w.queries {
		if _, err := e.Register(q, w.k); err != nil {
			return cell, nil, fmt.Errorf("register %q: %w", q, err)
		}
	}
	at := 0.0
	step := 1 / w.rate
	for _, text := range w.warm {
		at += step
		if _, err := e.Publish(text, at); err != nil {
			return cell, nil, err
		}
	}

	// Timed window. The sync-save series does its blocking save inside
	// the publish iteration that trips the cadence — that is exactly
	// the stop-the-world cost the online snapshot replaces, and it
	// lands in the latency tail where operators would feel it.
	snapPath := filepath.Join(dir, "state.snap")
	if series == walSeriesSyncSave {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return cell, nil, err
		}
	}
	var sample stats.Sample
	for i, text := range w.timed {
		at += step
		start := time.Now()
		if _, err := e.Publish(text, at); err != nil {
			return cell, nil, err
		}
		if series == walSeriesSyncSave && (i+1)%saveEvery == 0 {
			if err := blockingSave(snapPath, e); err != nil {
				return cell, nil, err
			}
		}
		sample.AddDuration(time.Since(start))
	}
	cell.PubMeanMS = sample.Mean()
	cell.PubP50MS = sample.Percentile(50)
	cell.PubP99MS = sample.Percentile(99)
	cell.PubMaxMS = sample.Percentile(100)

	final, err := captureAll(e, len(w.queries))
	if err != nil {
		return cell, nil, err
	}
	if durable {
		d := e.Stats().Durability
		cell.Snapshots = d.Snapshots
		cell.WALSegments = d.WALSegments
		cell.WALBytes = d.WALBytes
		cell.NextLSN = d.NextLSN
	} else if series == walSeriesSyncSave {
		cell.Snapshots = len(w.timed) / saveEvery
	}
	if err := e.Close(); err != nil {
		return cell, nil, err
	}
	closed = true

	if durable {
		// Cold restart: newest snapshot + WAL tail replay, timed, and
		// required to land on the exact pre-shutdown state.
		start := time.Now()
		re, err := ctk.Open(opts)
		if err != nil {
			return cell, nil, fmt.Errorf("recovery: %w", err)
		}
		cell.RecoveryMS = time.Since(start).Seconds() * 1000
		cell.Replayed = re.Stats().Durability.Replayed
		recovered, err := captureAll(re, len(w.queries))
		re.Close()
		if err != nil {
			return cell, nil, fmt.Errorf("recovery: %w", err)
		}
		if d := diffStates(final, recovered); d != "" {
			return cell, nil, fmt.Errorf("recovery parity: %s", d)
		}
	}
	return cell, final, nil
}

// blockingSave is the legacy persistence model: the capture, the gob
// encode, the fsync and the rename all happen inline on the ingest
// path, so the publish that trips the cadence pays the whole save.
func blockingSave(path string, e *ctk.Engine) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = e.WriteSnapshot(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Render prints the WAL ablation in the harness' table style.
func (r *WALResult) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", r.Title)
	fmt.Fprintf(w, "queries=%d publishes=%d snapshot-every=%d ops\n", r.Queries, r.Events, r.SaveEvery)
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s %6s %8s %10s %9s\n",
		"mode", "pub-mean", "pub-p50", "pub-p99", "pub-max", "snaps", "wal-KB", "recover-ms", "replayed")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-12s %10.3f %10.3f %10.3f %10.3f %6d %8d %10.1f %9d\n",
			c.Series, c.PubMeanMS, c.PubP50MS, c.PubP99MS, c.PubMaxMS,
			c.Snapshots, c.WALBytes/1024, c.RecoveryMS, c.Replayed)
	}
	fmt.Fprintln(w)
}
