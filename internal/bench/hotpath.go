package bench

import (
	"cmp"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"slices"
	"time"

	ctk "repro"
	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/rangemax"
	"repro/internal/stream"
	"repro/internal/textproc"
	"repro/internal/topk"
	"repro/internal/workload"
)

// HotpathCell is one (workload, algorithm) paired layout measurement:
// the same warm-started processor replaying the same stream over the
// flat (contiguous backing array, dense scratch) and legacy (per-term
// heap slices behind a map, map scratch) posting layouts.
type HotpathCell struct {
	Workload string
	// Algo is the matching algorithm, or "suite" for the per-workload
	// aggregate (the sum of the five algorithms' median costs — the
	// price of running the paper's whole suite over one event).
	Algo string
	// FlatMS / LegacyMS are mean milliseconds per event over the timed
	// window, taken from the median repetition (reps ranked by
	// improvement, so the reported pair is one real paired run).
	FlatMS   float64
	LegacyMS float64
	// ImprovementPct is how much cheaper the flat layout's event is,
	// in percent of the legacy cost: (legacy − flat) / legacy · 100.
	ImprovementPct float64
}

// HotpathResult is the ablhotpath experiment: the cache-friendly flat
// posting layout against the legacy per-term-slice layout, across the
// paper's five algorithms, on the skew-heavy Hot workload (where long
// posting lists dominate) and the Uniform control. Every rep is
// parity-gated — the flat run's final top-k sets must be bit-identical
// to the legacy run's — and a separate engine-level phase replays a
// churning register/publish timeline through both layouts end to end,
// requiring identical results and identical Seqs.
type HotpathResult struct {
	Title   string
	Queries int // indexed queries per workload
	Events  int // timed events per rep
	Reps    int // paired repetitions (median by improvement is reported)
	Cells   []HotpathCell
}

// HotpathTitle is the ablhotpath experiment's title, shared by the
// harness report and the CLI's experiment listing.
const HotpathTitle = "Extension — hot path: flat posting layout vs legacy map-backed per-term slices"

// hotpathAlgos is the measured suite: every algorithm the paper
// evaluates (the exhaustive oracle is excluded — it is a test fixture,
// not a hot path).
var hotpathAlgos = []core.Algorithm{core.AlgoMRIO, core.AlgoRIO, core.AlgoSortQuer, core.AlgoTPS, core.AlgoRTA}

// hotSuite labels the per-workload aggregate cell.
const hotSuite = "suite"

// hotReps is how many times each paired replay repeats, each rep with
// freshly constructed processors. As in ablobs, a single rep carries a
// few percent of allocation-layout luck; the median of many paired
// estimates is what makes the improvement number reproducible.
const hotReps = 11

// hotChunk is the pairing granularity: the timed window is replayed in
// alternating chunks of this many events against the flat and legacy
// processors (first-runner swapping every chunk), so machine drift and
// frequency wobble land on both layouts within the same few
// milliseconds instead of biasing whichever ran second.
const hotChunk = 50

// hotpathEvents sizes the timed window. The layout effect is tens of
// percent — far above ablobs' sub-percent overhead — but each event is
// cheap, so the window stretches well past the sweep experiments'
// Measure to amortize timer granularity.
func hotpathEvents(sc Scale) int {
	return max(400, 5*sc.Measure)
}

// hotProc is one side of a paired replay: a processor plus its own
// decay clock (both sides replay the identical event times, so the
// clocks advance in lockstep).
type hotProc struct {
	proc  algo.Processor
	decay *stream.Decay
}

// hotAssets is one workload's shared measurement setup: both layouts
// over the identical query set, one warm state, one timed window.
type hotAssets struct {
	ixFlat, ixLegacy *index.Index
	warm             *warmState
	timed            []stream.Event
}

// RunHotpath measures the ablhotpath experiment at the given scale.
func RunHotpath(sc Scale, out io.Writer) (*HotpathResult, error) {
	res := &HotpathResult{
		Title:   HotpathTitle,
		Queries: sc.BaseQueries,
		Events:  hotpathEvents(sc),
		Reps:    hotReps,
	}
	// Engine-level parity first: replay a churning register/publish
	// timeline through a flat and a legacy engine — registrations,
	// delta-segment inserts, generation rebuilds, unregistrations — and
	// require the surviving queries' results AND Seqs to match exactly.
	// The vector-level reps below then gate every measured pair.
	if err := hotpathSeqParity(sc); err != nil {
		return nil, fmt.Errorf("bench ablhotpath: %w", err)
	}
	if out != nil {
		fmt.Fprintf(out, "  engine parity: flat and legacy layouts agree (results and Seqs)\n")
	}
	model := corpus.WikipediaModel(sc.VocabSize)
	for _, kind := range []workload.Kind{workload.Hot, workload.Uniform} {
		assets, err := makeHotAssets(sc, model, kind)
		if err != nil {
			return nil, fmt.Errorf("bench ablhotpath: %s: %w", kind, err)
		}
		var sumFlat, sumLegacy float64
		for _, a := range hotpathAlgos {
			cell, err := runHotpathCell(assets, kind, a, out)
			if err != nil {
				return nil, fmt.Errorf("bench ablhotpath: %s/%s: %w", kind, a, err)
			}
			sumFlat += cell.FlatMS
			sumLegacy += cell.LegacyMS
			res.Cells = append(res.Cells, cell)
		}
		suite := HotpathCell{Workload: kind.String(), Algo: hotSuite, FlatMS: sumFlat, LegacyMS: sumLegacy}
		if sumLegacy > 0 {
			suite.ImprovementPct = (sumLegacy - sumFlat) / sumLegacy * 100
		}
		res.Cells = append(res.Cells, suite)
	}
	return res, nil
}

// makeHotAssets builds one workload kind's shared setup: both layouts
// over the identical query set, the event stream, and one warm state
// (keyed by query ID; both indexes assign IDs by position over the
// identical query set, so it serves both).
func makeHotAssets(sc Scale, model corpus.Model, kind workload.Kind) (*hotAssets, error) {
	cfg := workload.DefaultConfig(kind, sc.BaseQueries)
	cfg.Seed = sc.Seed
	qs, err := workload.Generate(model, cfg)
	if err != nil {
		return nil, err
	}
	vecs := make([]textproc.Vector, len(qs))
	ks := make([]int, len(qs))
	for i, q := range qs {
		vecs[i] = q.Vec
		ks[i] = q.K
	}
	a := &hotAssets{}
	if a.ixFlat, err = index.Build(vecs, ks); err != nil {
		return nil, err
	}
	if a.ixLegacy, err = index.BuildLayout(vecs, ks, index.LayoutLegacy); err != nil {
		return nil, err
	}
	gen := corpus.NewGenerator(model, sc.Seed+101, uint64(sc.Warmup+hotpathEvents(sc)))
	src, err := stream.NewSource(gen, sc.Rate, sc.Seed+202)
	if err != nil {
		return nil, err
	}
	events := src.Take(sc.Warmup + hotpathEvents(sc))
	if a.warm, err = warmUp(a.ixFlat, events[:sc.Warmup], defaultLambda); err != nil {
		return nil, err
	}
	a.timed = events[sc.Warmup:]
	return a, nil
}

// runHotpathCell measures one (workload, algorithm) pair: replay the
// same timed stream through both layouts in paired chunks, hotReps
// times, and report the median rep.
func runHotpathCell(a *hotAssets, kind workload.Kind, al core.Algorithm, out io.Writer) (HotpathCell, error) {
	cell := HotpathCell{Workload: kind.String(), Algo: string(al)}
	type rep struct {
		flatMS, legacyMS, improvement float64
	}
	reps := make([]rep, 0, hotReps)
	n := float64(len(a.timed))
	for i := 0; i < hotReps; i++ {
		// Construction-order swap: whichever processor allocates first
		// inherits a different heap layout; alternating cancels that
		// advantage across reps. Parity is checked every rep — it is
		// cheap next to the replay and keeps the gate un-skippable.
		flatDur, legacyDur, err := runHotpathPair(a, al, i%2 == 1)
		if err != nil {
			return cell, fmt.Errorf("rep %d: %w", i, err)
		}
		r := rep{
			flatMS:   flatDur.Seconds() * 1000 / n,
			legacyMS: legacyDur.Seconds() * 1000 / n,
		}
		if legacyDur > 0 {
			r.improvement = float64(legacyDur-flatDur) / float64(legacyDur) * 100
		}
		reps = append(reps, r)
	}

	// Median rep by improvement: robust against outlier reps, and the
	// reported cell is one real paired measurement, not a min/median mix.
	sorted := append([]rep(nil), reps...)
	slices.SortFunc(sorted, func(a, b rep) int { return cmp.Compare(a.improvement, b.improvement) })
	mid := sorted[len(sorted)/2]
	cell.FlatMS = mid.flatMS
	cell.LegacyMS = mid.legacyMS
	cell.ImprovementPct = mid.improvement
	if out != nil {
		fmt.Fprintf(out, "  %-8s %-9s flat %8.4f ms/event  legacy %8.4f ms/event  improvement %+.1f%%\n",
			kind, al, cell.FlatMS, cell.LegacyMS, cell.ImprovementPct)
	}
	return cell, nil
}

// runHotpathPair replays the timed window once through two fresh
// processors — one per layout — in alternating hotChunk-event slices,
// both starting from the shared warm state. Both sides see the same
// events, the same decay schedule and (by the score path's design) the
// same summation order, so the final top-k sets must agree bit for
// bit; the parity check turns that into a hard gate.
func runHotpathPair(a *hotAssets, al core.Algorithm, swap bool) (flatDur, legacyDur time.Duration, err error) {
	mk := func(ix *index.Index) (hotProc, error) {
		proc, err := core.NewProcessor(al, rangemax.KindSegTree, ix)
		if err != nil {
			return hotProc{}, err
		}
		a.warm.load(proc)
		decay, err := stream.NewDecay(defaultLambda)
		if err != nil {
			return hotProc{}, err
		}
		decay.SetBase(a.warm.base)
		return hotProc{proc: proc, decay: decay}, nil
	}
	var flat, legacy hotProc
	for _, legacyFirst := range []bool{swap, !swap} {
		if legacyFirst {
			if legacy, err = mk(a.ixLegacy); err != nil {
				return 0, 0, err
			}
		} else {
			if flat, err = mk(a.ixFlat); err != nil {
				return 0, 0, err
			}
		}
	}

	// Hold GC off for the timed window: both sides allocate nothing per
	// event in steady state, so collection pauses are pure noise.
	runtime.GC()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	chunk := func(p *hotProc, dur *time.Duration, evs []stream.Event) {
		t := time.Now()
		for _, ev := range evs {
			for p.decay.NeedsRebase(ev.Time) {
				p.proc.Rebase(p.decay.RebaseTo(ev.Time))
			}
			p.proc.ProcessEvent(ev.Doc, p.decay.Factor(ev.Time))
		}
		*dur += time.Since(t)
	}
	for i := 0; i < len(a.timed); i += hotChunk {
		evs := a.timed[i:min(i+hotChunk, len(a.timed))]
		first, second := &flat, &legacy
		fd, sd := &flatDur, &legacyDur
		if (i/hotChunk)%2 == 1 {
			first, second, fd, sd = &legacy, &flat, &legacyDur, &flatDur
		}
		chunk(first, fd, evs)
		chunk(second, sd, evs)
	}

	if d := diffStores(flat.proc.Results(), legacy.proc.Results(), a.ixFlat.NumQueries()); d != "" {
		return 0, 0, fmt.Errorf("parity: flat layout diverged from legacy: %s", d)
	}
	return flatDur, legacyDur, nil
}

// hotpathSeqParity replays one churning engine-level timeline through
// both layouts and requires exact agreement: every surviving query's
// results (documents, scores, order) and its Seq. The churn —
// registrations mid-stream (delta-segment inserts), enough of them to
// trip synchronous generation rebuilds, plus unregistrations
// (tombstones) — drags both engines through every layout-sensitive
// structure the PR touched before the comparison.
func hotpathSeqParity(sc Scale) error {
	w := makeWALWorkload(sc)
	// Late registrations churn the delta segment; a small threshold with
	// synchronous rebuilds folds them into fresh generations mid-run.
	extra := make([]string, 8)
	for i := range extra {
		extra[i] = w.queries[i*len(w.queries)/len(extra)] // reuse texts: collisions guaranteed
	}
	run := func(layout string) ([]queryState, error) {
		e, err := ctk.New(ctk.Options{
			Algorithm:        "MRIO",
			Lambda:           defaultLambda,
			DefaultK:         w.k,
			IndexLayout:      layout,
			Rebuild:          "sync",
			RebuildThreshold: 3,
		})
		if err != nil {
			return nil, err
		}
		defer e.Close()
		ids := make([]ctk.QueryID, 0, len(w.queries)+len(extra))
		for _, q := range w.queries {
			id, err := e.Register(q, w.k)
			if err != nil {
				return nil, err
			}
			ids = append(ids, id)
		}
		at := 0.0
		step := 1 / w.rate
		publish := func(texts []string) error {
			for _, text := range texts {
				at += step
				if _, err := e.Publish(text, at); err != nil {
					return err
				}
			}
			return nil
		}
		if err := publish(w.warm); err != nil {
			return nil, err
		}
		// Timed window in slices, churning between them.
		per := max(1, len(w.timed)/(len(extra)+1))
		for i, q := range extra {
			if err := publish(w.timed[i*per : (i+1)*per]); err != nil {
				return nil, err
			}
			if i%3 == 2 { // tombstone an early query now and then
				if err := e.Unregister(ids[i]); err != nil {
					return nil, err
				}
				ids[i] = ^ctk.QueryID(0)
			}
			id, err := e.Register(q, w.k)
			if err != nil {
				return nil, err
			}
			ids = append(ids, id)
		}
		if err := publish(w.timed[(len(extra))*per:]); err != nil {
			return nil, err
		}
		states := make([]queryState, 0, len(ids))
		for _, id := range ids {
			if id == ^ctk.QueryID(0) {
				states = append(states, queryState{}) // unregistered slot, keeps alignment
				continue
			}
			rs, seq, err := e.ResultsSeq(id)
			if err != nil {
				return nil, fmt.Errorf("query %d: %w", id, err)
			}
			st := queryState{seq: seq}
			for _, r := range rs {
				st.docs = append(st.docs, r.DocID)
				st.scores = append(st.scores, r.Score)
			}
			states = append(states, st)
		}
		return states, nil
	}
	flat, err := run("flat")
	if err != nil {
		return fmt.Errorf("engine parity (flat): %w", err)
	}
	legacy, err := run("legacy")
	if err != nil {
		return fmt.Errorf("engine parity (legacy): %w", err)
	}
	if d := diffStates(flat, legacy); d != "" {
		return fmt.Errorf("engine parity: flat diverged from legacy: %s", d)
	}
	return nil
}

// diffStores compares every query's final top-k across two result
// stores, exactly — same documents, same scores, same order. It returns
// the first divergence, or "" when the stores agree.
func diffStores(a, b *topk.Store, n int) string {
	for q := uint32(0); q < uint32(n); q++ {
		ta, tb := a.Top(q), b.Top(q)
		if len(ta) != len(tb) {
			return fmt.Sprintf("query %d: %d results vs %d", q, len(ta), len(tb))
		}
		for i := range ta {
			if ta[i] != tb[i] {
				return fmt.Sprintf("query %d rank %d: doc %d score %v vs doc %d score %v",
					q, i, ta[i].DocID, ta[i].Score, tb[i].DocID, tb[i].Score)
			}
		}
	}
	return ""
}

// Render prints the hot-path ablation in the harness' table style.
func (r *HotpathResult) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", r.Title)
	fmt.Fprintf(w, "queries=%d events=%d reps=%d (median paired rep; suite = sum over algorithms)\n", r.Queries, r.Events, r.Reps)
	fmt.Fprintf(w, "%-10s %-9s %12s %13s %13s\n", "workload", "algo", "flat ms/ev", "legacy ms/ev", "improvement")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-10s %-9s %12.4f %13.4f %+12.1f%%\n", c.Workload, c.Algo, c.FlatMS, c.LegacyMS, c.ImprovementPct)
	}
	fmt.Fprintln(w)
}
