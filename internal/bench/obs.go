package bench

import (
	"cmp"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"slices"
	"time"

	ctk "repro"
)

// ObsCell is one instrumentation mode's measurement over the shared
// publish timeline: per-event cost and per-event allocation behaviour.
type ObsCell struct {
	Series string
	// MSPerEvent is the mean publish cost over the timed window, taken
	// from the median repetition (reps are ranked by paired overhead).
	MSPerEvent float64
	// AllocsPerEvent / BytesPerEvent are heap allocation counts and
	// bytes per publish (runtime.MemStats deltas over the timed
	// window, same rep). The instrumented series must match the
	// baseline exactly: the record path is designed to allocate
	// nothing.
	AllocsPerEvent float64
	BytesPerEvent  float64
}

// ObsResult is the ablobs experiment: the instrumented publish path
// (metrics + stage timing + 1-in-N tracing, the production default)
// versus the same build with Options.DisableMetrics, replaying the
// identical register-then-publish timeline.
type ObsResult struct {
	Title   string
	Queries int // registered queries
	Events  int // timed publishes per rep
	Reps    int // paired repetitions (median by overhead is reported)
	Cells   []ObsCell
	// OverheadPct is the instrumented series' ms/event increase over
	// baseline in percent, from the median paired rep. The acceptance
	// bar is < 3.
	OverheadPct float64
	// AddedAllocsPerEvent is instrumented minus baseline allocs/event.
	// The acceptance bar is 0 (exact).
	AddedAllocsPerEvent float64
	AddedBytesPerEvent  float64
}

// ObsTitle is the ablobs experiment's title, shared by the harness
// report and the CLI's experiment listing.
const ObsTitle = "Extension — observability: instrumented publish path vs uninstrumented build"

// The ablobs series labels.
const (
	obsSeriesOff = "metrics-off"
	obsSeriesOn  = "metrics-on"
)

// obsReps is how many times the paired timeline replays, each rep
// against a freshly constructed engine pair. The reported overhead is
// the median of the per-rep paired estimates: a single rep carries a
// persistent bias of several percent — heap and cache layout luck at
// engine construction time, larger than the effect being measured and
// roughly symmetric across instantiations — so the estimator samples
// many layouts and takes a robust middle. A rep is cheap (the timed
// window is tens of milliseconds), so the sample count is what buys
// reproducibility.
const obsReps = 41

// obsChunk is the pairing granularity: the timed window is measured in
// alternating chunks of this many events against the instrumented and
// uninstrumented engine (swapping which goes first every chunk), so
// machine drift, frequency wobble and GC debt land on both series
// within the same few milliseconds instead of biasing whichever series
// ran second.
const obsChunk = 100

// obsEventFactor stretches the timed window beyond the ablwal
// workload's: the overhead under test is a few hundred nanoseconds per
// event, so the window must be long enough that per-window noise (GC,
// timer granularity) amortizes below it.
const obsEventFactor = 4

// obsQueryFactor grows the registered query set beyond the ablwal
// workload's. ablwal keeps its set small because every registration is
// a logged (possibly fsynced) WAL record — a constraint this
// experiment doesn't share — and a percentage overhead claim needs a
// representative denominator: against a few hundred queries a publish
// costs tens of microseconds and the instrumentation's fixed
// ~0.5 µs reads high, while production-shaped query sets (the paper's
// axis runs to millions) put per-event matching cost where the fixed
// cost belongs in the noise.
const obsQueryFactor = 4

// obsMeasure is one engine's share of a paired rep.
type obsMeasure struct {
	wall          time.Duration
	mallocs, heap uint64
}

func (m obsMeasure) cell(series string, n float64) ObsCell {
	return ObsCell{
		Series:         series,
		MSPerEvent:     m.wall.Seconds() * 1000 / n,
		AllocsPerEvent: float64(m.mallocs) / n,
		BytesPerEvent:  float64(m.heap) / n,
	}
}

// RunObs measures the ablobs experiment at the given scale. Both
// series replay the identical timeline (the ablwal workload shape:
// Zipf-worded registrations, warm prefix, timed window) and the final
// per-query results are parity-checked — instrumentation must not
// change answers. The instrumented series runs the production default:
// full metric set plus 1-in-64 publish tracing.
func RunObs(sc Scale, out io.Writer) (*ObsResult, error) {
	// Reuse the ablwal timeline shape with a query set obsQueryFactor
	// larger (walQueries derives from BaseQueries, floored at 256).
	scaled := sc
	scaled.BaseQueries = 50 * obsQueryFactor * walQueries(sc)
	w := makeWALWorkload(scaled)
	// Tile the timed window: same text distribution, longer measurement.
	timed := make([]string, 0, obsEventFactor*len(w.timed))
	for i := 0; i < obsEventFactor; i++ {
		timed = append(timed, w.timed...)
	}
	w.timed = timed
	res := &ObsResult{
		Title:   ObsTitle,
		Queries: len(w.queries),
		Events:  len(w.timed),
		Reps:    obsReps,
	}

	type rep struct {
		off, on  obsMeasure
		overhead float64
	}
	reps := make([]rep, 0, obsReps)
	n := float64(len(w.timed))
	for i := 0; i < obsReps; i++ {
		off, on, err := runObsPair(w, i%2 == 1)
		if err != nil {
			return nil, fmt.Errorf("bench ablobs: rep %d: %w", i, err)
		}
		r := rep{off: off, on: on}
		if off.wall > 0 {
			r.overhead = float64(on.wall-off.wall) / float64(off.wall) * 100
		}
		reps = append(reps, r)
		if out != nil {
			fmt.Fprintf(out, "  rep %d  off %7.4f ms/event  on %7.4f ms/event  overhead %+.2f%%\n",
				i, off.cell(obsSeriesOff, n).MSPerEvent, on.cell(obsSeriesOn, n).MSPerEvent, r.overhead)
		}
	}

	// Report the median rep by overhead: a robust middle, and the cells
	// shown are a real paired measurement, not a min/median mix.
	sorted := append([]rep(nil), reps...)
	slices.SortFunc(sorted, func(a, b rep) int { return cmp.Compare(a.overhead, b.overhead) })
	mid := sorted[len(sorted)/2]
	res.Cells = []ObsCell{mid.off.cell(obsSeriesOff, n), mid.on.cell(obsSeriesOn, n)}
	res.OverheadPct = mid.overhead
	res.AddedAllocsPerEvent = res.Cells[1].AllocsPerEvent - res.Cells[0].AllocsPerEvent
	res.AddedBytesPerEvent = res.Cells[1].BytesPerEvent - res.Cells[0].BytesPerEvent
	return res, nil
}

// runObsPair replays the timeline once against two fresh engines in
// lockstep — one instrumented, one with Options.DisableMetrics —
// timing the shared window in alternating obsChunk-event slices
// (first-runner swaps every chunk). Pairing at millisecond granularity
// cancels temporal noise — per-chunk clock and MemStats reads happen
// outside both windows, so the measurement adds nothing per event, and
// each chunk's two runs see the same machine. swap flips which engine
// is constructed first, so any systematic allocation-order advantage
// cancels across reps too.
func runObsPair(w walWorkload, swap bool) (off, on obsMeasure, err error) {
	mk := func(disable bool) (*ctk.Engine, error) {
		return ctk.New(ctk.Options{Algorithm: "MRIO", Lambda: defaultLambda, DefaultK: w.k,
			// The query set is registered up front and never churns, so a
			// background generation rebuild tripping mid-measurement would
			// only smear its allocations into the MemStats window; park the
			// threshold above the workload.
			RebuildThreshold: 1 << 30,
			DisableMetrics:   disable})
	}
	var eOff, eOn *ctk.Engine
	for _, disable := range []bool{!swap, swap} {
		e, err := mk(disable)
		if err != nil {
			return off, on, err
		}
		defer e.Close()
		if disable {
			eOff = e
		} else {
			eOn = e
		}
	}

	both := []*ctk.Engine{eOff, eOn}
	for _, e := range both {
		for _, q := range w.queries {
			if _, err := e.Register(q, w.k); err != nil {
				return off, on, fmt.Errorf("register %q: %w", q, err)
			}
		}
	}
	at := 0.0
	step := 1 / w.rate
	for _, text := range w.warm {
		at += step
		for _, e := range both {
			if _, err := e.Publish(text, at); err != nil {
				return off, on, err
			}
		}
	}

	// Collect the warm-phase garbage, then hold GC off for the timed
	// window so collection pauses don't land on arbitrary chunks. This
	// cannot hide instrumentation cost: the record path provably
	// allocates nothing (the added-allocs gate is exact), so GC work is
	// identical for both series — excluding it only removes noise.
	runtime.GC()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	chunk := func(e *ctk.Engine, m *obsMeasure, texts []string, atStart float64) error {
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		a := atStart
		t := time.Now()
		for _, text := range texts {
			a += step
			if _, err := e.Publish(text, a); err != nil {
				return err
			}
		}
		m.wall += time.Since(t)
		runtime.ReadMemStats(&m1)
		m.mallocs += m1.Mallocs - m0.Mallocs
		m.heap += m1.TotalAlloc - m0.TotalAlloc
		return nil
	}
	for i := 0; i < len(w.timed); i += obsChunk {
		texts := w.timed[i:min(i+obsChunk, len(w.timed))]
		first, second := eOff, eOn
		fm, sm := &off, &on
		if (i/obsChunk)%2 == 1 {
			first, second, fm, sm = eOn, eOff, &on, &off
		}
		if err := chunk(first, fm, texts, at); err != nil {
			return off, on, err
		}
		if err := chunk(second, sm, texts, at); err != nil {
			return off, on, err
		}
		at += float64(len(texts)) * step
	}

	// Sanity: the registry actually recorded the workload — a wiring
	// regression would otherwise make the "overhead" trivially zero.
	vars := eOn.Metrics().Vars()
	want := float64(len(w.warm) + len(w.timed))
	if got, _ := vars["ctk_publishes_total"].(float64); got != want {
		return off, on, fmt.Errorf("instrumented run recorded %v publishes, want %v", got, want)
	}
	// Parity: instrumentation must not change answers.
	sOff, err := captureAll(eOff, len(w.queries))
	if err != nil {
		return off, on, err
	}
	sOn, err := captureAll(eOn, len(w.queries))
	if err != nil {
		return off, on, err
	}
	if d := diffStates(sOff, sOn); d != "" {
		return off, on, fmt.Errorf("parity: instrumented engine diverged: %s", d)
	}
	return off, on, nil
}

// Render prints the observability ablation in the harness' table style.
func (r *ObsResult) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", r.Title)
	fmt.Fprintf(w, "queries=%d publishes=%d reps=%d (median paired rep)\n", r.Queries, r.Events, r.Reps)
	fmt.Fprintf(w, "%-12s %12s %14s %14s\n", "mode", "ms/event", "allocs/event", "bytes/event")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-12s %12.4f %14.2f %14.1f\n", c.Series, c.MSPerEvent, c.AllocsPerEvent, c.BytesPerEvent)
	}
	fmt.Fprintf(w, "overhead=%.2f%% added-allocs/event=%.2f added-bytes/event=%.1f\n\n",
		r.OverheadPct, r.AddedAllocsPerEvent, r.AddedBytesPerEvent)
}
