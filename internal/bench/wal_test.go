package bench

import (
	"strings"
	"testing"
)

// TestRunWALQuick exercises the ablwal harness end to end at a trimmed
// scale: all four persistence modes replay, the cross-series and
// recovery parity gates pass, and the cells carry the durability
// counters the report promises.
func TestRunWALQuick(t *testing.T) {
	sc := QuickScale()
	sc.Measure = 30 // 150 timed publishes: fast, still trips snapshots

	res, err := RunWAL(sc, t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells: %d", len(res.Cells))
	}
	byName := map[string]WALCell{}
	for _, c := range res.Cells {
		byName[c.Series] = c
		if c.PubMeanMS <= 0 || c.PubP99MS < c.PubP50MS {
			t.Fatalf("%s: implausible latency sample: %+v", c.Series, c)
		}
	}
	for _, s := range []string{walSeriesNone, walSeriesInterval, walSeriesAlways, walSeriesSyncSave} {
		if _, ok := byName[s]; !ok {
			t.Fatalf("missing series %s", s)
		}
	}
	for _, s := range []string{walSeriesInterval, walSeriesAlways} {
		c := byName[s]
		if c.NextLSN == 0 || c.WALSegments == 0 {
			t.Fatalf("%s: no WAL activity recorded: %+v", s, c)
		}
		if c.RecoveryMS <= 0 {
			t.Fatalf("%s: recovery not timed: %+v", s, c)
		}
	}

	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "wal-always") || !strings.Contains(sb.String(), "recover-ms") {
		t.Fatalf("render missing columns:\n%s", sb.String())
	}
}
