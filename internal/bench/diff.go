package bench

import (
	"fmt"
	"io"
)

// Report is the ctkbench -json artifact schema (BENCH_*.json). CI
// uploads one per harness experiment and the benchdiff comparator
// diffs the current run's reports against the previous run's.
type Report struct {
	Scale       string         `json:"scale"`
	Experiments []ReportSweep  `json:"experiments,omitempty"`
	Churn       *ChurnResult   `json:"churn,omitempty"`
	Wal         *WALResult     `json:"wal,omitempty"`
	Obs         *ObsResult     `json:"obs,omitempty"`
	Hotpath     *HotpathResult `json:"hotpath,omitempty"`
	Notify      *NotifyResult  `json:"notify,omitempty"`
}

// ReportSweep is one sweep experiment's measured cells in a Report.
type ReportSweep struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Cells []Cell `json:"cells"`
}

// MetricKind classifies a report metric for regression thresholds:
// wall-time metrics compare relatively (with an absolute noise floor),
// allocation counts compare absolutely (they are deterministic, so any
// real increase is a code change, not noise).
type MetricKind int

const (
	KindMS MetricKind = iota
	KindAllocs
)

// Metric is one comparable number extracted from a report. Every value
// a report carries is already a median (or mean over a long window) of
// repeated paired measurements — the harness does the noise reduction,
// the comparator only thresholds.
type Metric struct {
	Name  string
	Value float64
	Kind  MetricKind
}

// Metrics flattens a report into its comparable metrics, names stable
// across runs (series and cell labels, never indexes).
func Metrics(r *Report) []Metric {
	var ms []Metric
	add := func(kind MetricKind, v float64, format string, args ...any) {
		ms = append(ms, Metric{Name: fmt.Sprintf(format, args...), Value: v, Kind: kind})
	}
	for _, e := range r.Experiments {
		for _, c := range e.Cells {
			add(KindMS, c.MeanMS, "%s/%s@%g/mean-ms", e.ID, c.Series, c.Param)
		}
	}
	if c := r.Churn; c != nil {
		for _, cell := range c.Cells {
			add(KindMS, cell.IngestMeanMS, "churn/%s/ingest-mean-ms", cell.Series)
			add(KindMS, cell.IngestP99MS, "churn/%s/ingest-p99-ms", cell.Series)
			add(KindMS, cell.AddP99MS, "churn/%s/add-p99-ms", cell.Series)
		}
	}
	if w := r.Wal; w != nil {
		for _, cell := range w.Cells {
			add(KindMS, cell.PubMeanMS, "wal/%s/pub-mean-ms", cell.Series)
			add(KindMS, cell.PubP99MS, "wal/%s/pub-p99-ms", cell.Series)
		}
	}
	if o := r.Obs; o != nil {
		for _, cell := range o.Cells {
			add(KindMS, cell.MSPerEvent, "obs/%s/ms-per-event", cell.Series)
			add(KindAllocs, cell.AllocsPerEvent, "obs/%s/allocs-per-event", cell.Series)
		}
	}
	if h := r.Hotpath; h != nil {
		// Only the flat side is the product's hot path; the legacy side
		// exists as the ablation control and regressing it is not a
		// product regression.
		for _, cell := range h.Cells {
			add(KindMS, cell.FlatMS, "hotpath/%s/%s/flat-ms-per-event", cell.Workload, cell.Algo)
		}
	}
	if n := r.Notify; n != nil {
		// The fleet sweep's contract is publish-path isolation: the
		// publisher's per-event cost must not grow with subscribers, and
		// drain-tier delivery latency must stay bounded.
		for _, cell := range n.Cells {
			add(KindMS, cell.PubMeanMS, "notify/%s/pub-mean-ms", cell.Series)
			add(KindMS, cell.PubP99MS, "notify/%s/pub-p99-ms", cell.Series)
			if cell.Subs > 0 {
				add(KindMS, cell.DeliverP99MS, "notify/%s/deliver-p99-ms", cell.Series)
			}
		}
	}
	return ms
}

// DiffOptions are the regression thresholds.
type DiffOptions struct {
	// MSRegressionPct fails a wall-time metric that grew by more than
	// this percentage of its baseline.
	MSRegressionPct float64
	// MSNoiseFloor is the absolute ms delta below which a wall-time
	// change is noise regardless of percentage (quick-scale cells sit
	// in the tens of microseconds; a few µs of runner jitter must not
	// fail CI).
	MSNoiseFloor float64
	// AllocFloor fails an allocation metric that grew by more than this
	// many allocs/event over baseline. Allocation counts are
	// deterministic up to map-growth timing, so the floor is small.
	AllocFloor float64
}

// DefaultDiffOptions matches the CI gate: >10% ms/event (over a 5µs
// floor) or any allocs/event increase beyond 0.25.
func DefaultDiffOptions() DiffOptions {
	return DiffOptions{MSRegressionPct: 10, MSNoiseFloor: 0.005, AllocFloor: 0.25}
}

// The diff line statuses.
const (
	DiffOK         = "ok"
	DiffRegression = "REGRESSION"
	DiffImproved   = "improved"
	DiffNew        = "new"     // metric absent from the baseline (bootstrap) — skipped
	DiffGone       = "removed" // metric absent from the current run — skipped
)

// DiffLine is one metric's comparison.
type DiffLine struct {
	Name      string
	Kind      MetricKind
	Base, Cur float64
	Status    string
}

// DiffResult is a full report-against-baseline comparison.
type DiffResult struct {
	Lines       []DiffLine
	Regressions int
}

// Diff compares the current report's metrics against the baseline's.
// Metrics present on only one side are reported but never fail: a
// first run has no baseline, and renamed/retired experiments must not
// wedge CI.
func Diff(baseline, current *Report, o DiffOptions) *DiffResult {
	base := map[string]Metric{}
	for _, m := range Metrics(baseline) {
		base[m.Name] = m
	}
	res := &DiffResult{}
	seen := map[string]bool{}
	for _, cur := range Metrics(current) {
		seen[cur.Name] = true
		line := DiffLine{Name: cur.Name, Kind: cur.Kind, Cur: cur.Value}
		b, ok := base[cur.Name]
		if !ok {
			line.Status = DiffNew
			res.Lines = append(res.Lines, line)
			continue
		}
		line.Base = b.Value
		delta := cur.Value - b.Value
		switch cur.Kind {
		case KindAllocs:
			switch {
			case delta > o.AllocFloor:
				line.Status = DiffRegression
			case delta < -o.AllocFloor:
				line.Status = DiffImproved
			default:
				line.Status = DiffOK
			}
		default:
			switch {
			case delta > o.MSNoiseFloor && delta > b.Value*o.MSRegressionPct/100:
				line.Status = DiffRegression
			case -delta > o.MSNoiseFloor && -delta > b.Value*o.MSRegressionPct/100:
				line.Status = DiffImproved
			default:
				line.Status = DiffOK
			}
		}
		if line.Status == DiffRegression {
			res.Regressions++
		}
		res.Lines = append(res.Lines, line)
	}
	for _, m := range Metrics(baseline) {
		if !seen[m.Name] {
			res.Lines = append(res.Lines, DiffLine{Name: m.Name, Kind: m.Kind, Base: m.Value, Status: DiffGone})
		}
	}
	return res
}

// Ok reports whether the comparison passed (no regressions).
func (d *DiffResult) Ok() bool { return d.Regressions == 0 }

// Render prints the comparison, one metric per line.
func (d *DiffResult) Render(w io.Writer) {
	for _, l := range d.Lines {
		switch l.Status {
		case DiffNew:
			fmt.Fprintf(w, "%-12s %-45s %12s -> %10.4f\n", l.Status, l.Name, "(none)", l.Cur)
		case DiffGone:
			fmt.Fprintf(w, "%-12s %-45s %12.4f -> %10s\n", l.Status, l.Name, l.Base, "(none)")
		default:
			pct := 0.0
			if l.Base != 0 {
				pct = (l.Cur - l.Base) / l.Base * 100
			}
			fmt.Fprintf(w, "%-12s %-45s %12.4f -> %10.4f  %+6.1f%%\n", l.Status, l.Name, l.Base, l.Cur, pct)
		}
	}
	if d.Regressions > 0 {
		fmt.Fprintf(w, "%d regression(s)\n", d.Regressions)
	}
}
