package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func mustStore(t *testing.T, ks []int) *Store {
	t.Helper()
	s, err := NewStore(ks)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStoreValidation(t *testing.T) {
	if _, err := NewStore([]int{0}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewStore([]int{1 << 16}); err == nil {
		t.Fatal("k=65536 accepted")
	}
	s := mustStore(t, []int{3, 1, 5})
	if s.NumQueries() != 3 || s.K(0) != 3 || s.K(2) != 5 {
		t.Fatalf("store shape wrong: K=%d,%d,%d", s.K(0), s.K(1), s.K(2))
	}
}

func TestThresholdWarmup(t *testing.T) {
	s := mustStore(t, []int{2})
	if s.Threshold(0) != 0 {
		t.Fatal("empty query should have zero threshold")
	}
	s.Add(0, 1, 5)
	if s.Threshold(0) != 0 {
		t.Fatal("half-full query should have zero threshold")
	}
	added, changed := s.Add(0, 2, 3)
	if !added || !changed {
		t.Fatalf("fill-to-k: added=%v changed=%v, want true,true", added, changed)
	}
	if s.Threshold(0) != 3 {
		t.Fatalf("Threshold = %v, want 3", s.Threshold(0))
	}
}

func TestAddReplacesMinimum(t *testing.T) {
	s := mustStore(t, []int{2})
	s.Add(0, 1, 5)
	s.Add(0, 2, 3)
	added, changed := s.Add(0, 3, 4)
	if !added || !changed {
		t.Fatal("replacement should report added and threshold change")
	}
	if s.Threshold(0) != 4 {
		t.Fatalf("Threshold = %v, want 4", s.Threshold(0))
	}
	top := s.Top(0)
	if len(top) != 2 || top[0].DocID != 1 || top[1].DocID != 3 {
		t.Fatalf("Top = %+v", top)
	}
}

func TestAddRejections(t *testing.T) {
	s := mustStore(t, []int{1})
	if added, _ := s.Add(0, 1, 0); added {
		t.Fatal("zero score admitted")
	}
	if added, _ := s.Add(0, 1, -2); added {
		t.Fatal("negative score admitted")
	}
	s.Add(0, 1, 5)
	if added, changed := s.Add(0, 2, 5); added || changed {
		t.Fatal("equal score must not replace incumbent")
	}
	if added, _ := s.Add(0, 2, 4); added {
		t.Fatal("below-threshold score admitted")
	}
}

func TestTopOrderingAndTies(t *testing.T) {
	s := mustStore(t, []int{3})
	s.Add(0, 30, 1.0)
	s.Add(0, 10, 2.0)
	s.Add(0, 20, 1.0)
	top := s.Top(0)
	if top[0].DocID != 10 {
		t.Fatalf("best doc = %d", top[0].DocID)
	}
	// Equal scores tie-break by ascending DocID.
	if top[1].DocID != 20 || top[2].DocID != 30 {
		t.Fatalf("tie order wrong: %+v", top)
	}
}

func TestThresholdMonotoneUnderInsertions(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(8)
		s, err := NewStore([]int{k})
		if err != nil {
			return false
		}
		prev := 0.0
		for i := 0; i < 200; i++ {
			s.Add(0, uint64(i), r.Float64()*100)
			cur := s.Threshold(0)
			if cur < prev {
				return false // S_k must never decrease on arrivals
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStoreMatchesReferenceTopK(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(6)
		s, err := NewStore([]int{k})
		if err != nil {
			return false
		}
		var all []ScoredDoc
		for i := 0; i < 150; i++ {
			sc := r.Float64()*10 + 0.001
			s.Add(0, uint64(i), sc)
			all = append(all, ScoredDoc{DocID: uint64(i), Score: sc})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Score != all[j].Score {
				return all[i].Score > all[j].Score
			}
			return all[i].DocID < all[j].DocID
		})
		want := all
		if len(want) > k {
			want = want[:k]
		}
		got := s.Top(0)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			// Score sets must match; doc identity can differ only on
			// exact ties at the boundary (meas-zero with random floats).
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleQueriesIndependent(t *testing.T) {
	s := mustStore(t, []int{1, 2})
	s.Add(0, 1, 10)
	s.Add(1, 2, 1)
	if s.Threshold(0) != 10 {
		t.Fatalf("q0 threshold = %v", s.Threshold(0))
	}
	if s.Threshold(1) != 0 {
		t.Fatalf("q1 threshold = %v (should still be warming up)", s.Threshold(1))
	}
	if s.Size(0) != 1 || s.Size(1) != 1 {
		t.Fatal("sizes wrong")
	}
	if len(s.Top(1)) != 1 {
		t.Fatal("q1 top wrong")
	}
}

func TestRebasePreservesOrderAndScalesThreshold(t *testing.T) {
	s := mustStore(t, []int{3})
	s.Add(0, 1, 10)
	s.Add(0, 2, 20)
	s.Add(0, 3, 30)
	before := s.Top(0)
	thr := s.Threshold(0)
	s.Rebase(0.5)
	after := s.Top(0)
	if s.Threshold(0) != thr*0.5 {
		t.Fatalf("threshold after rebase = %v, want %v", s.Threshold(0), thr*0.5)
	}
	for i := range after {
		if after[i].DocID != before[i].DocID {
			t.Fatalf("rebase reordered results: %+v vs %+v", after, before)
		}
		if after[i].Score != before[i].Score*0.5 {
			t.Fatalf("score not scaled: %v vs %v", after[i].Score, before[i].Score)
		}
	}
}

func TestRebaseInvalidFactorPanics(t *testing.T) {
	s := mustStore(t, []int{1})
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive rebase factor accepted")
		}
	}()
	s.Rebase(0)
}

func TestHeapInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ks := []int{1 + r.Intn(5), 1 + r.Intn(5)}
		s, err := NewStore(ks)
		if err != nil {
			return false
		}
		for i := 0; i < 300; i++ {
			q := uint32(r.Intn(2))
			s.Add(q, uint64(i), r.Float64()*50)
			// Check min-heap invariant for each query segment.
			for qq := uint32(0); qq < 2; qq++ {
				base := int(s.offsets[qq])
				n := int(s.sizes[qq])
				for j := 1; j < n; j++ {
					if s.scores[base+(j-1)/2] > s.scores[base+j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBest(t *testing.T) {
	s := mustStore(t, []int{3})
	if s.Best(0) != 0 {
		t.Fatal("empty Best != 0")
	}
	s.Add(0, 1, 5)
	s.Add(0, 2, 9)
	s.Add(0, 3, 7)
	if got := s.Best(0); got != 9 {
		t.Fatalf("Best = %v, want 9", got)
	}
	// Replacement of the min must not disturb Best.
	s.Add(0, 4, 8)
	if got := s.Best(0); got != 9 {
		t.Fatalf("Best after replace = %v, want 9", got)
	}
	s.Add(0, 5, 20)
	if got := s.Best(0); got != 20 {
		t.Fatalf("Best after new max = %v, want 20", got)
	}
}
