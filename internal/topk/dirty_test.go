package topk

import (
	"slices"
	"testing"
)

func drainAll(s *Store) []uint32 {
	var got []uint32
	s.DrainDirty(func(q uint32) { got = append(got, q) })
	return got
}

// TestDirtyTracking: Add records each changed query once per drain
// window; rejected offers record nothing; a drain resets the window.
func TestDirtyTracking(t *testing.T) {
	s, err := NewStore([]int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Add(0, 1, 1.0)
	s.Add(0, 2, 2.0)
	s.Add(2, 3, 1.0)
	if got := drainAll(s); !slices.Equal(got, []uint32{0, 2}) {
		t.Fatalf("dirty = %v, want [0 2]", got)
	}
	if got := drainAll(s); len(got) != 0 {
		t.Fatalf("second drain = %v, want empty", got)
	}
	// Rejected offer (heap full, score below min) stays clean.
	if added, _ := s.Add(0, 9, 0.5); added {
		t.Fatal("low score admitted")
	}
	if got := drainAll(s); len(got) != 0 {
		t.Fatalf("rejected offer dirtied: %v", got)
	}
	// Replacement of the minimum is a change.
	if added, _ := s.Add(0, 9, 3.0); !added {
		t.Fatal("high score rejected")
	}
	if got := drainAll(s); !slices.Equal(got, []uint32{0}) {
		t.Fatalf("dirty = %v, want [0]", got)
	}
	// A nil fn discards.
	s.Add(1, 4, 1.0)
	s.DrainDirty(nil)
	if got := drainAll(s); len(got) != 0 {
		t.Fatalf("discard leaked: %v", got)
	}
}

// TestDirtyTrackingSlice: views keep independent change records over
// their own (rebased) ranges, and the parent's record is untouched by
// adds through a view.
func TestDirtyTrackingSlice(t *testing.T) {
	s, err := NewStore([]int{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := s.Slice(0, 2), s.Slice(2, 4)
	lo.Add(1, 10, 1.0) // parent query 1
	hi.Add(1, 11, 1.0) // parent query 3
	if got := drainAll(lo); !slices.Equal(got, []uint32{1}) {
		t.Fatalf("lo dirty = %v, want [1]", got)
	}
	if got := drainAll(hi); !slices.Equal(got, []uint32{1}) {
		t.Fatalf("hi dirty = %v, want [1]", got)
	}
	if got := drainAll(s); len(got) != 0 {
		t.Fatalf("parent saw view adds: %v", got)
	}
	// The data itself is shared: the parent sees the stored results.
	if s.Size(1) != 1 || s.Size(3) != 1 {
		t.Fatalf("arena not shared: sizes %d %d", s.Size(1), s.Size(3))
	}
	// Adds through the parent record on the parent only.
	s.Add(0, 12, 1.0)
	if got := drainAll(s); !slices.Equal(got, []uint32{0}) {
		t.Fatalf("parent dirty = %v, want [0]", got)
	}
	if got := drainAll(lo); len(got) != 0 {
		t.Fatalf("view saw parent add: %v", got)
	}
}
