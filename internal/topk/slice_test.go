package topk

import "testing"

// TestSliceSharesArena: results added through a slice view are visible
// through the parent (and vice versa), with query IDs rebased.
func TestSliceSharesArena(t *testing.T) {
	s, err := NewStore([]int{2, 3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	v := s.Slice(1, 3) // parent queries 1 and 2
	if v.NumQueries() != 2 {
		t.Fatalf("view queries = %d, want 2", v.NumQueries())
	}
	if v.K(0) != 3 || v.K(1) != 1 {
		t.Fatalf("view ks = %d,%d, want 3,1", v.K(0), v.K(1))
	}
	v.Add(0, 100, 5)
	v.Add(1, 200, 7)
	if got := s.Top(1); len(got) != 1 || got[0].DocID != 100 || got[0].Score != 5 {
		t.Fatalf("parent query 1 = %+v", got)
	}
	if got := s.Top(2); len(got) != 1 || got[0].DocID != 200 {
		t.Fatalf("parent query 2 = %+v", got)
	}
	s.Add(1, 101, 9)
	if got := v.Top(0); len(got) != 2 || got[0].DocID != 101 {
		t.Fatalf("view query 0 = %+v", got)
	}
	// Thresholds agree across views.
	if s.Threshold(2) != v.Threshold(1) {
		t.Fatalf("thresholds diverge: %v vs %v", s.Threshold(2), v.Threshold(1))
	}
}

// TestSliceRebaseIsLocal: rebasing a view rescales exactly its own
// queries, so disjoint views covering the store compose into a full
// rebase.
func TestSliceRebaseIsLocal(t *testing.T) {
	s, err := NewStore([]int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for q := uint32(0); q < 3; q++ {
		s.Add(q, uint64(q), 10)
	}
	left, right := s.Slice(0, 1), s.Slice(1, 3)
	left.Rebase(0.5)
	if got := s.Top(0)[0].Score; got != 5 {
		t.Fatalf("query 0 score = %v, want 5", got)
	}
	if got := s.Top(1)[0].Score; got != 10 {
		t.Fatalf("query 1 score = %v, want 10 (untouched by left view)", got)
	}
	right.Rebase(0.5)
	for q := uint32(0); q < 3; q++ {
		if got := s.Top(q)[0].Score; got != 5 {
			t.Fatalf("after both rebases query %d score = %v, want 5", q, got)
		}
	}
}

// TestSliceEdges: empty and full-range views behave.
func TestSliceEdges(t *testing.T) {
	s, err := NewStore([]int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Slice(1, 1); v.NumQueries() != 0 {
		t.Fatalf("empty view has %d queries", v.NumQueries())
	}
	full := s.Slice(0, 2)
	full.Add(1, 42, 3)
	if got := s.Top(1); len(got) != 1 || got[0].DocID != 42 {
		t.Fatalf("full view write invisible: %+v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range slice did not panic")
		}
	}()
	s.Slice(1, 3)
}

// TestDocIDsView: DocIDs exposes the live entries without allocation
// or ordering guarantees.
func TestDocIDsView(t *testing.T) {
	s, err := NewStore([]int{2}) // k=2
	if err != nil {
		t.Fatal(err)
	}
	if got := s.DocIDs(0); len(got) != 0 {
		t.Fatalf("empty query DocIDs = %v", got)
	}
	s.Add(0, 7, 1)
	s.Add(0, 8, 2)
	s.Add(0, 9, 3) // evicts 7
	ids := s.DocIDs(0)
	seen := map[uint64]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	if len(ids) != 2 || !seen[8] || !seen[9] || seen[7] {
		t.Fatalf("DocIDs = %v, want {8, 9}", ids)
	}
}
