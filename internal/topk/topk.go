// Package topk maintains per-query top-k results and the thresholds
// S_k(q) that drive every pruning bound in the system.
//
// Scores are stored in the *inflated* domain (Eq. 1 of the paper):
// S(q,d) = c(q,d)·e^{λ(τ_d - base)}. Under exponential decay the
// relative order of two documents never changes, so a query's top-k
// set only changes on arrivals and S_k(q) is monotonically
// non-decreasing — until the monitor rebases the exponent to avoid
// overflow, which rescales every stored score by a common positive
// factor and therefore preserves order exactly (see Rebase).
//
// The Store keeps all heaps in three flat arenas rather than millions
// of little slices: at the paper's scale (4·10⁶ queries) this is the
// difference between a GC-quiet working set and pointer soup.
package topk

import (
	"fmt"
	"sort"
)

// ScoredDoc is one result entry: a document and its inflated score.
type ScoredDoc struct {
	DocID uint64
	Score float64
}

// Store holds the top-k heaps of all registered queries.
//
// Every store additionally records which queries' result sets changed
// since the last DrainDirty call — the change-detection source for the
// push-notification pipeline. A Slice view keeps its own independent
// dirty record over its own query range, so disjoint views written by
// concurrent partition workers never share mutable tracking state; the
// union of the views' records is exactly the parent range's record.
type Store struct {
	offsets []uint32  // len N+1; query q owns arena[offsets[q]:offsets[q]+k_q]
	scores  []float64 // min-heap per query segment
	ids     []uint64  // parallel to scores
	sizes   []uint16  // current fill per query

	// Change record: dirty lists each query admitted into since the
	// last drain, at most once (mark/epoch dedup, O(1) per Add).
	dirty []uint32
	mark  []uint32
	epoch uint32

	// view marks a Slice: views share a parent's arenas and must never
	// grow them (Append panics).
	view bool
}

// NewStore allocates heaps for the given per-query result sizes.
func NewStore(ks []int) (*Store, error) {
	s := &Store{
		offsets: make([]uint32, len(ks)+1),
		sizes:   make([]uint16, len(ks)),
		mark:    make([]uint32, len(ks)),
		epoch:   1,
	}
	var total uint64
	for i, k := range ks {
		if k < 1 || k > 1<<16-1 {
			return nil, fmt.Errorf("topk: query %d has invalid k=%d", i, k)
		}
		total += uint64(k)
		if total > 1<<32-1 {
			return nil, fmt.Errorf("topk: result arena exceeds 2^32 entries")
		}
		s.offsets[i+1] = uint32(total)
	}
	s.scores = make([]float64, total)
	s.ids = make([]uint64, total)
	return s, nil
}

// NumQueries returns the number of queries in the store.
func (s *Store) NumQueries() int { return len(s.sizes) }

// K returns query q's configured result size.
func (s *Store) K(q uint32) int { return int(s.offsets[q+1] - s.offsets[q]) }

// Size returns how many results query q currently holds.
func (s *Store) Size(q uint32) int { return int(s.sizes[q]) }

// Threshold returns S_k(q): the k-th best inflated score, or 0 while
// the query holds fewer than k documents (the warm-up convention — a
// zero threshold makes the query's ratios +Inf so it is always
// evaluated).
func (s *Store) Threshold(q uint32) float64 {
	if int(s.sizes[q]) < s.K(q) {
		return 0
	}
	return s.scores[s.offsets[q]]
}

// Add offers document docID with inflated score to query q. It returns
// whether the result set changed and whether the threshold S_k(q)
// changed (the signal to update ratio structures). Scores must be
// positive; zero-score offers are rejected.
func (s *Store) Add(q uint32, docID uint64, score float64) (added, thresholdChanged bool) {
	if score <= 0 {
		return false, false
	}
	base := int(s.offsets[q])
	k := s.K(q)
	n := int(s.sizes[q])
	switch {
	case n < k:
		// Heap not yet full: push.
		i := n
		s.scores[base+i] = score
		s.ids[base+i] = docID
		s.sizes[q]++
		s.siftUp(base, i)
		s.MarkDirty(q)
		// Threshold moves 0 → min exactly when the heap fills.
		return true, n+1 == k
	case score > s.scores[base]:
		// Replace the minimum and sift down.
		s.scores[base] = score
		s.ids[base] = docID
		s.siftDown(base, 0, k)
		s.MarkDirty(q)
		return true, true
	default:
		return false, false
	}
}

// CanAppend reports whether Append(k) would succeed, without
// mutating anything. Callers growing a store in lockstep with another
// structure use it to validate before committing either side. It
// panics on a Slice view, whose arenas belong to the parent.
func (s *Store) CanAppend(k int) error {
	if s.view {
		panic("topk: append to a slice view")
	}
	if k < 1 || k > 1<<16-1 {
		return fmt.Errorf("topk: invalid k=%d", k)
	}
	if uint64(s.offsets[len(s.offsets)-1])+uint64(k) > 1<<32-1 {
		return fmt.Errorf("topk: result arena exceeds 2^32 entries")
	}
	return nil
}

// Append grows the store by one query with result size k, returning
// its ID (the previous NumQueries). The new query starts empty. The
// amortized cost is O(k) — the delta generation uses it to make query
// registration independent of how many queries are already pending.
// Append panics on a Slice view, whose arenas belong to the parent.
func (s *Store) Append(k int) (uint32, error) {
	if err := s.CanAppend(k); err != nil {
		return 0, err
	}
	total := uint64(s.offsets[len(s.offsets)-1]) + uint64(k)
	q := uint32(len(s.sizes))
	s.offsets = append(s.offsets, uint32(total))
	s.sizes = append(s.sizes, 0)
	s.mark = append(s.mark, 0)
	s.scores = append(s.scores, make([]float64, k)...)
	s.ids = append(s.ids, make([]uint64, k)...)
	return q, nil
}

// Transplant replaces query q's contents with a verbatim copy of
// query srcQ's heap segment from src (both must have the same k). The
// heap layout is position-independent, so the copy is two memmoves —
// no sorting, no re-heapification — which is what keeps a generation
// install's result carry O(live results) with small constants. A
// non-empty transplant marks q dirty, like any other result mutation.
func (s *Store) Transplant(q uint32, src *Store, srcQ uint32) {
	if s.K(q) != src.K(srcQ) {
		panic(fmt.Sprintf("topk: transplant between k=%d and k=%d", s.K(q), src.K(srcQ)))
	}
	n := uint32(src.sizes[srcQ])
	db, sb := s.offsets[q], src.offsets[srcQ]
	copy(s.scores[db:db+n], src.scores[sb:sb+n])
	copy(s.ids[db:db+n], src.ids[sb:sb+n])
	s.sizes[q] = src.sizes[srcQ]
	if n > 0 {
		s.MarkDirty(q)
	}
}

// MarkDirty records that query q's result set changed in the current
// drain window (at most one record per query per window). Add calls it
// on every admission; it is exported for callers that move change
// records between stores — the parallel matcher carries a retiring
// slice view's undrained record into the parent arena when partition
// boundaries move, so no change is lost across a repartition.
func (s *Store) MarkDirty(q uint32) {
	if s.mark[q] == s.epoch {
		return
	}
	s.mark[q] = s.epoch
	s.dirty = append(s.dirty, q)
}

// DrainDirty calls fn (when non-nil) for every query whose result set
// changed since the previous drain, in first-change order, then resets
// the record. A nil fn discards the record — callers use that to
// swallow changes caused by bulk loads and rebuilds, which must not
// surface as stream-event notifications.
func (s *Store) DrainDirty(fn func(q uint32)) {
	if fn != nil {
		for _, q := range s.dirty {
			fn(q)
		}
	}
	s.dirty = s.dirty[:0]
	s.epoch++
	if s.epoch == 0 { // uint32 wrap: invalidate all marks
		clear(s.mark)
		s.epoch = 1
	}
}

// siftUp restores the min-heap property from leaf i upward within the
// segment starting at base.
func (s *Store) siftUp(base, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if s.scores[base+parent] <= s.scores[base+i] {
			return
		}
		s.swap(base+parent, base+i)
		i = parent
	}
}

// siftDown restores the min-heap property from node i downward in a
// segment of n elements.
func (s *Store) siftDown(base, i, n int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.scores[base+l] < s.scores[base+min] {
			min = l
		}
		if r < n && s.scores[base+r] < s.scores[base+min] {
			min = r
		}
		if min == i {
			return
		}
		s.swap(base+i, base+min)
		i = min
	}
}

func (s *Store) swap(a, b int) {
	s.scores[a], s.scores[b] = s.scores[b], s.scores[a]
	s.ids[a], s.ids[b] = s.ids[b], s.ids[a]
}

// Slice returns a view over queries [lo, hi) that shares the
// receiver's arenas: results added or rebased through either side are
// visible on both. Query IDs are rebased so the view's query 0 is the
// parent's query lo. The view's Rebase rescales only its own score
// segment, which lets disjoint views of one store be rebased
// independently (and concurrently) while exactly covering the parent.
func (s *Store) Slice(lo, hi int) *Store {
	if lo < 0 || hi < lo || hi > s.NumQueries() {
		panic(fmt.Sprintf("topk: slice [%d, %d) of %d queries", lo, hi, s.NumQueries()))
	}
	base, end := s.offsets[lo], s.offsets[hi]
	offsets := make([]uint32, hi-lo+1)
	for i := range offsets {
		offsets[i] = s.offsets[lo+i] - base
	}
	// Full slice expressions clamp capacity at the view's end, so
	// disjointness between neighboring views is structural: nothing a
	// view does can reach the next partition's arena segment. The
	// change record is NOT shared with the parent: each view tracks its
	// own range, so concurrent writers into disjoint views never touch
	// common tracking state.
	return &Store{
		offsets: offsets,
		scores:  s.scores[base:end:end],
		ids:     s.ids[base:end:end],
		sizes:   s.sizes[lo:hi:hi],
		mark:    make([]uint32, hi-lo),
		epoch:   1,
		view:    true,
	}
}

// DocIDs returns query q's current result document IDs in internal
// (heap) order, as a view into the store's arena. The caller must not
// mutate the slice or hold it across result mutations.
func (s *Store) DocIDs(q uint32) []uint64 {
	base := s.offsets[q]
	return s.ids[base : base+uint32(s.sizes[q])]
}

// Best returns query q's highest stored score (0 while empty). The
// segment is a min-heap, so this is an O(k) scan.
func (s *Store) Best(q uint32) float64 {
	base := int(s.offsets[q])
	n := int(s.sizes[q])
	best := 0.0
	for i := 0; i < n; i++ {
		if s.scores[base+i] > best {
			best = s.scores[base+i]
		}
	}
	return best
}

// Top returns query q's current results sorted by descending score
// (ties broken by ascending document ID, for deterministic output).
func (s *Store) Top(q uint32) []ScoredDoc {
	base := int(s.offsets[q])
	n := int(s.sizes[q])
	out := make([]ScoredDoc, n)
	for i := 0; i < n; i++ {
		out[i] = ScoredDoc{DocID: s.ids[base+i], Score: s.scores[base+i]}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].DocID < out[j].DocID
	})
	return out
}

// Rebase multiplies every stored score by factor (0 < factor),
// preserving heap order. The monitor calls this when shifting the
// inflation epoch; thresholds scale by the same factor.
func (s *Store) Rebase(factor float64) {
	if factor <= 0 {
		panic("topk: rebase factor must be positive")
	}
	for i := range s.scores {
		s.scores[i] *= factor
	}
}
