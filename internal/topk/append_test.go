package topk

import "testing"

// TestStoreAppend: a store grown query by query behaves exactly like
// one allocated with the full k vector up front.
func TestStoreAppend(t *testing.T) {
	ks := []int{3, 1, 4}
	grown, err := NewStore(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range ks {
		q, err := grown.Append(k)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if q != uint32(i) {
			t.Fatalf("append %d assigned ID %d", i, q)
		}
	}
	flat, err := NewStore(ks)
	if err != nil {
		t.Fatal(err)
	}
	offers := []struct {
		q     uint32
		doc   uint64
		score float64
	}{
		{0, 1, 5}, {0, 2, 3}, {0, 3, 7}, {0, 4, 4}, // evicts doc 2
		{1, 5, 2}, {1, 6, 1}, // rejected
		{2, 7, 9},
	}
	for _, o := range offers {
		a1, t1 := grown.Add(o.q, o.doc, o.score)
		a2, t2 := flat.Add(o.q, o.doc, o.score)
		if a1 != a2 || t1 != t2 {
			t.Fatalf("offer %+v: (%v,%v) vs (%v,%v)", o, a1, t1, a2, t2)
		}
	}
	for q := uint32(0); q < 3; q++ {
		if grown.K(q) != flat.K(q) || grown.Size(q) != flat.Size(q) || grown.Threshold(q) != flat.Threshold(q) {
			t.Fatalf("query %d shape diverged", q)
		}
		a, b := grown.Top(q), flat.Top(q)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d rank %d: %+v vs %+v", q, i, a[i], b[i])
			}
		}
	}
	// Appends mid-life must not disturb existing results, and the new
	// query participates in the change record.
	grown.DrainDirty(nil)
	q, err := grown.Append(2)
	if err != nil {
		t.Fatal(err)
	}
	if added, _ := grown.Add(q, 42, 1.5); !added {
		t.Fatal("new query rejected an offer")
	}
	var dirty []uint32
	grown.DrainDirty(func(id uint32) { dirty = append(dirty, id) })
	if len(dirty) != 1 || dirty[0] != q {
		t.Fatalf("dirty after append = %v", dirty)
	}
	if top := grown.Top(0); len(top) != 3 || top[0].Score != 7 {
		t.Fatalf("old results disturbed by append: %+v", top)
	}

	if _, err := grown.Append(0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// TestSliceAppendPanics: a view shares its parent's arenas and must
// refuse to grow them.
func TestSliceAppendPanics(t *testing.T) {
	s, err := NewStore([]int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	view := s.Slice(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Append on a slice view did not panic")
		}
	}()
	view.Append(1)
}
