package topk

import (
	"math/rand"
	"testing"
)

func BenchmarkAddSteadyState(b *testing.B) {
	s, err := NewStore([]int{10})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	// Fill so most offers are rejections (the steady-state pattern).
	for i := 0; i < 100; i++ {
		s.Add(0, uint64(i), r.Float64()*100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(0, uint64(i), r.Float64()*110)
	}
}

func BenchmarkThreshold(b *testing.B) {
	s, _ := NewStore([]int{10})
	for i := 0; i < 20; i++ {
		s.Add(0, uint64(i), float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Threshold(0)
	}
}

func BenchmarkRebase(b *testing.B) {
	ks := make([]int, 10000)
	for i := range ks {
		ks[i] = 10
	}
	s, _ := NewStore(ks)
	r := rand.New(rand.NewSource(5))
	for q := uint32(0); q < 10000; q++ {
		for i := 0; i < 10; i++ {
			s.Add(q, uint64(i), r.Float64())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Rebase(0.9999999) // stay away from underflow across iterations
	}
}
