package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"repro"
)

// newObsServer builds a test server with full control over the server
// Options (newTestServer pins Options{}).
func newObsServer(t *testing.T, eopts ctk.Options, sopts Options) *httptest.Server {
	t.Helper()
	engine, err := ctk.New(eopts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(engine, sopts).Handler())
	t.Cleanup(func() {
		ts.Close()
		engine.Close()
	})
	return ts
}

// seedWorkload registers a query and publishes a few documents through
// the HTTP surface so every stage histogram has observations.
func seedWorkload(t *testing.T, base string) {
	t.Helper()
	resp, out := postJSON(t, base+"/v1/queries", `{"keywords": "alpha beta", "k": 3}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %v", resp.StatusCode, out)
	}
	for i := 0; i < 5; i++ {
		body := fmt.Sprintf(`{"text": "alpha beta doc %d", "time": %d}`, i, i)
		if resp, out := postJSON(t, base+"/v1/documents", body); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("publish %d: %d %v", i, resp.StatusCode, out)
		}
	}
}

// promLine matches one valid exposition line: comment or sample.
var promLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*` +
		`|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? ` +
		`(-?[0-9.e+-]+|\+Inf|-Inf|NaN))$`)

func TestMetricsEndpoint(t *testing.T) {
	ts := newObsServer(t, ctk.Options{Lambda: 0.01}, Options{})
	seedWorkload(t, ts.URL)

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content-type %q", ct)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("missing X-Request-ID on /v1 response")
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for i, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("line %d not scrape-parseable: %q", i+1, line)
		}
	}
	for _, want := range []string{
		"# TYPE ctk_publishes_total counter",
		"ctk_publishes_total 5",
		"# TYPE ctk_publish_stage_seconds histogram",
		`ctk_publish_stage_seconds_count{stage="analyze"} 5`,
		`ctk_publish_stage_seconds_count{stage="match"} 5`,
		"ctk_documents_total 5",
		"ctk_queries 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Stage histograms must be non-empty: at least one bucket line with
	// a finite le before the +Inf terminator.
	if !regexp.MustCompile(`ctk_publish_stage_seconds_bucket\{stage="match",le="[0-9]`).MatchString(body) {
		t.Error("match stage histogram has no finite buckets")
	}
}

func TestDebugVarsEndpoint(t *testing.T) {
	ts := newObsServer(t, ctk.Options{Lambda: 0.01}, Options{})
	seedWorkload(t, ts.URL)

	resp, err := http.Get(ts.URL + "/v1/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if got := vars["ctk_publishes_total"]; got != float64(5) {
		t.Fatalf("ctk_publishes_total = %v", got)
	}
	h, ok := vars[`ctk_publish_stage_seconds{stage="match"}`].(map[string]any)
	if !ok {
		t.Fatalf("missing match stage summary: %v", vars)
	}
	if h["count"] != float64(5) || h["p50"] == float64(0) {
		t.Fatalf("stage summary = %v", h)
	}
}

func TestDebugTraceEndpoint(t *testing.T) {
	ts := newObsServer(t, ctk.Options{Lambda: 0.01, TraceEvery: 1}, Options{})
	seedWorkload(t, ts.URL)

	resp, err := http.Get(ts.URL + "/v1/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Count  int `json:"count"`
		Traces []struct {
			Doc     uint64            `json:"doc"`
			TotalNS uint64            `json:"total_ns"`
			Stages  map[string]uint64 `json:"stages_ns"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 5 || len(out.Traces) != 5 {
		t.Fatalf("count = %d, traces = %d, want 5", out.Count, len(out.Traces))
	}
	// Newest first: last published doc leads.
	if out.Traces[0].Doc != 4 {
		t.Fatalf("newest trace doc = %d, want 4", out.Traces[0].Doc)
	}
	if out.Traces[0].TotalNS == 0 || out.Traces[0].Stages["match"] == 0 {
		t.Fatalf("trace timings empty: %+v", out.Traces[0])
	}
}

func TestDebugTraceDisabled(t *testing.T) {
	ts := newObsServer(t, ctk.Options{TraceEvery: -1}, Options{})
	resp, err := http.Get(ts.URL + "/v1/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Count  int               `json:"count"`
		Traces []json.RawMessage `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 0 || out.Traces == nil {
		t.Fatalf("disabled trace should be {count: 0, traces: []}, got %+v", out)
	}
}

func TestHealthzBuildInfo(t *testing.T) {
	ts := newObsServer(t, ctk.Options{}, Options{DataMode: "durable"})
	for _, path := range []string{"/v1/healthz", "/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if out["status"] != "ok" {
			t.Fatalf("%s status = %v", path, out["status"])
		}
		// New build-info fields, plus the pre-existing shape callers
		// already depend on.
		for _, key := range []string{"version", "go_version", "data_mode", "uptime_seconds", "stream_time", "stats"} {
			if _, ok := out[key]; !ok {
				t.Errorf("%s missing %q: %v", path, key, out)
			}
		}
		if out["data_mode"] != "durable" {
			t.Errorf("%s data_mode = %v", path, out["data_mode"])
		}
		if !strings.HasPrefix(out["go_version"].(string), "go") {
			t.Errorf("%s go_version = %v", path, out["go_version"])
		}
	}
}

func TestPprofGating(t *testing.T) {
	off := newObsServer(t, ctk.Options{}, Options{})
	resp, err := http.Get(off.URL + "/v1/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof off: status %d, want 404", resp.StatusCode)
	}
	envelope(t, out, "not_found")

	on := newObsServer(t, ctk.Options{}, Options{Pprof: true})
	for _, path := range []string{"/v1/debug/pprof/", "/v1/debug/pprof/heap?debug=1"} {
		resp, err := http.Get(on.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pprof on: GET %s = %d", path, resp.StatusCode)
		}
	}
}

func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	ts := newObsServer(t, ctk.Options{}, Options{Logger: logger})

	// Client-supplied request ID is echoed and logged.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/stats", nil)
	req.Header.Set("X-Request-ID", "client-abc")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-abc" {
		t.Fatalf("X-Request-ID = %q, want echo of client-abc", got)
	}

	// Generated IDs appear when the client sends none.
	resp2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	gen := resp2.Header.Get("X-Request-ID")
	if gen == "" || gen == "client-abc" {
		t.Fatalf("generated X-Request-ID = %q", gen)
	}

	// Legacy routes bypass the middleware entirely.
	resp3, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.Header.Get("X-Request-ID") != "" {
		t.Fatal("legacy route got an X-Request-ID")
	}

	logs := buf.String()
	for _, want := range []string{
		"id=client-abc", "id=" + gen, "method=GET", "path=/v1/stats", "status=200",
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("access log missing %q:\n%s", want, logs)
		}
	}
	if strings.Count(logs, "path=/v1/stats") != 2 {
		t.Errorf("want exactly 2 /v1/stats lines (legacy /stats unlogged):\n%s", logs)
	}
	// Scrape endpoints log at Debug, not Info.
	resp4, _ := http.Get(ts.URL + "/v1/healthz")
	io.Copy(io.Discard, resp4.Body)
	resp4.Body.Close()
	if !strings.Contains(buf.String(), "level=DEBUG msg=request") {
		t.Errorf("healthz access line should be DEBUG:\n%s", buf.String())
	}
}

// TestWatchStillStreamsThroughMiddleware guards the loggingWriter's
// Unwrap: the SSE watch path needs Flush via http.ResponseController
// through the wrapper.
func TestWatchStillStreamsThroughMiddleware(t *testing.T) {
	ts := newObsServer(t, ctk.Options{Lambda: 0.01}, Options{})
	resp, out := postJSON(t, ts.URL+"/v1/queries", `{"keywords": "alpha", "k": 3}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %v", resp.StatusCode, out)
	}
	wresp, sc := watchReq(t, ts.URL+"/v1/watch/0", "")
	defer wresp.Body.Close()
	if wresp.Header.Get("X-Request-ID") == "" {
		t.Fatal("watch response missing X-Request-ID")
	}
	if _, out := postJSON(t, ts.URL+"/v1/documents", `{"text": "alpha doc", "time": 1}`); out == nil {
		t.Fatal("publish failed")
	}
	evs := readEvents(t, sc, 2) // initial snapshot + the update
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
}
