package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro"
)

func newTestServer(t *testing.T, opts ctk.Options) *httptest.Server {
	t.Helper()
	var (
		engine *ctk.Engine
		err    error
	)
	if opts.Durability.Dir != "" {
		engine, err = ctk.Open(opts)
	} else {
		engine, err = ctk.New(opts)
	}
	if err != nil {
		t.Fatal(err)
	}
	s := New(engine, Options{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		engine.Close()
	})
	return ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	return resp, out
}

// envelope decodes a /v1 error body and fails the test unless it has
// the uniform {"error": {"code", "message"}} shape.
func envelope(t *testing.T, out map[string]any, wantCode string) {
	t.Helper()
	e, ok := out["error"].(map[string]any)
	if !ok {
		t.Fatalf("error body not an envelope: %v", out)
	}
	if e["code"] != wantCode {
		t.Fatalf("error code %v, want %q (message %v)", e["code"], wantCode, e["message"])
	}
	if msg, _ := e["message"].(string); msg == "" {
		t.Fatalf("empty error message: %v", out)
	}
}

// TestV1ContractSuccessShapes drives every /v1 route's happy path and
// pins its response shape.
func TestV1ContractSuccessShapes(t *testing.T) {
	ts := newTestServer(t, ctk.Options{Lambda: 0.001, SnippetLength: 40})

	// POST /v1/queries
	resp, out := postJSON(t, ts.URL+"/v1/queries", `{"keywords":"solar panel efficiency","k":3}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add query: %d %v", resp.StatusCode, out)
	}
	if _, ok := out["id"].(float64); !ok {
		t.Fatalf("add query body: %v", out)
	}

	// POST /v1/documents
	resp, out = postJSON(t, ts.URL+"/v1/documents", `{"text":"solar panel efficiency record","time":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("publish: %d %v", resp.StatusCode, out)
	}
	if _, ok := out["DocID"]; !ok {
		t.Fatalf("publish body: %v", out)
	}

	// POST /v1/documents/batch
	resp, out = postJSON(t, ts.URL+"/v1/documents/batch", `{"texts":["panel efficiency gains","unrelated story"],"time":2}`)
	if resp.StatusCode != http.StatusAccepted || out["Docs"].(float64) != 2 {
		t.Fatalf("batch: %d %v", resp.StatusCode, out)
	}

	// GET /v1/results/{id}
	r, err := http.Get(ts.URL + "/v1/results/0")
	if err != nil {
		t.Fatal(err)
	}
	var rp ResultsPayload
	if err := json.NewDecoder(r.Body).Decode(&rp); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK || rp.Seq == 0 || len(rp.Results) == 0 {
		t.Fatalf("results: %d %+v", r.StatusCode, rp)
	}

	// GET /v1/stats — including the durability block (disabled here).
	r, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st ctk.Stats
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.Queries != 1 || st.Documents != 3 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Durability.Enabled {
		t.Fatalf("durability reported enabled on an in-memory engine: %+v", st.Durability)
	}

	// GET /v1/healthz
	r, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h map[string]any
	if err := json.NewDecoder(r.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK || h["status"] != "ok" {
		t.Fatalf("healthz: %d %v", r.StatusCode, h)
	}

	// DELETE /v1/queries/{id}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/queries/0", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}
}

// TestV1ErrorEnvelope pins the machine-readable envelope on every /v1
// failure class, including the catch-all 404.
func TestV1ErrorEnvelope(t *testing.T) {
	ts := newTestServer(t, ctk.Options{Lambda: 0.001})
	postJSON(t, ts.URL+"/v1/queries", `{"keywords":"solar power","k":2}`)
	postJSON(t, ts.URL+"/v1/documents", `{"text":"later doc","time":100}`)

	cases := []struct {
		name, method, path, body string
		status                   int
		code                     string
	}{
		{"bad json", "POST", "/v1/queries", `not json`, 400, "bad_json"},
		{"stopword query", "POST", "/v1/queries", `{"keywords":"the and of"}`, 400, "no_terms"},
		{"bad id", "DELETE", "/v1/queries/notanumber", "", 400, "invalid_argument"},
		{"unknown query", "DELETE", "/v1/queries/42", "", 404, "unknown_query"},
		{"empty doc", "POST", "/v1/documents", `{"text":"  "}`, 400, "invalid_argument"},
		{"time regression", "POST", "/v1/documents", `{"text":"earlier","time":1}`, 409, "time_regression"},
		{"empty batch", "POST", "/v1/documents/batch", `{"texts":[]}`, 400, "invalid_argument"},
		{"results unknown", "GET", "/v1/results/42", "", 404, "unknown_query"},
		{"results bad id", "GET", "/v1/results/notanumber", "", 400, "invalid_argument"},
		{"watch unknown", "GET", "/v1/watch/42", "", 404, "unknown_query"},
		{"watch bad buffer", "GET", "/v1/watch/0?buffer=0", "", 400, "invalid_argument"},
		{"watch bad top_n", "GET", "/v1/watch/0?top_n=zero", "", 400, "invalid_argument"},
		{"watch negative top_n", "GET", "/v1/watch/0?top_n=-1", "", 400, "invalid_argument"},
		{"watch bad min_rank_change", "GET", "/v1/watch/0?min_rank_change=0", "", 400, "invalid_argument"},
		{"watch bad min_interval", "GET", "/v1/watch/0?min_interval=fast", "", 400, "invalid_argument"},
		{"watch negative min_interval", "GET", "/v1/watch/0?min_interval=-1s", "", 400, "invalid_argument"},
		{"catch-all 404", "GET", "/v1/no/such/route", "", 404, "not_found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, _ := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if tc.body != "" {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			var out map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatalf("non-JSON error body: %v", err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (%v)", resp.StatusCode, tc.status, out)
			}
			envelope(t, out, tc.code)
		})
	}

	// Removed queries get their own code.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/queries/0", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	r, err := http.Get(ts.URL + "/v1/results/0")
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	_ = json.NewDecoder(r.Body).Decode(&out)
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("removed query: %d", r.StatusCode)
	}
	envelope(t, out, "query_removed")
}

// TestLegacyAliasParity: every route is mounted at both /v1 and the
// legacy unversioned path; success payloads are identical and the two
// mounts differ only in error shape (envelope vs flat).
func TestLegacyAliasParity(t *testing.T) {
	ts := newTestServer(t, ctk.Options{Lambda: 0.001})
	postJSON(t, ts.URL+"/v1/queries", `{"keywords":"solar power","k":2}`)
	postJSON(t, ts.URL+"/documents", `{"text":"solar power story","time":1}`)

	// Success parity: polling via both mounts yields the same bytes.
	read := func(path string) (int, string) {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var sb strings.Builder
		sc := bufio.NewScanner(r.Body)
		for sc.Scan() {
			sb.WriteString(sc.Text())
		}
		return r.StatusCode, sb.String()
	}
	for _, path := range []string{"/results/0", "/stats"} {
		lc, lb := read(path)
		vc, vb := read("/v1" + path)
		if lc != vc || lb != vb {
			t.Fatalf("%s: legacy (%d, %s) != v1 (%d, %s)", path, lc, lb, vc, vb)
		}
	}

	// Error-shape divergence: flat on legacy, envelope on /v1.
	r, err := http.Get(ts.URL + "/results/notanumber")
	if err != nil {
		t.Fatal(err)
	}
	var flat map[string]string
	if err := json.NewDecoder(r.Body).Decode(&flat); err != nil {
		t.Fatalf("legacy error not flat: %v", err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest || flat["error"] == "" {
		t.Fatalf("legacy error: %d %v", r.StatusCode, flat)
	}
	r, err = http.Get(ts.URL + "/v1/results/notanumber")
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]any
	_ = json.NewDecoder(r.Body).Decode(&env)
	r.Body.Close()
	envelope(t, env, "invalid_argument")

	// Root catch-all stays flat (legacy clients); /v1 catch-all is an
	// envelope.
	r, _ = http.Get(ts.URL + "/no/such/route")
	flat = nil
	_ = json.NewDecoder(r.Body).Decode(&flat)
	r.Body.Close()
	if flat["error"] == "" {
		t.Fatalf("root 404 not flat: %v", flat)
	}
}

// TestAdminSnapshot: on a durable engine the endpoint produces an
// online snapshot and reports its drain point; without durability it
// fails with the machine code for it.
func TestAdminSnapshot(t *testing.T) {
	dir := t.TempDir()
	ts := newTestServer(t, ctk.Options{
		Lambda:     0.001,
		Durability: ctk.Durability{Dir: dir, SnapshotOps: -1},
	})
	postJSON(t, ts.URL+"/v1/queries", `{"keywords":"flood rescue","k":2}`)
	postJSON(t, ts.URL+"/v1/documents", `{"text":"flood rescue downtown","time":1}`)

	resp, out := postJSON(t, ts.URL+"/v1/admin/snapshot", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin snapshot: %d %v", resp.StatusCode, out)
	}
	if lsn := out["lsn"].(float64); lsn != 2 {
		t.Fatalf("snapshot lsn %v, want 2", lsn)
	}
	if out["path"] == "" {
		t.Fatalf("snapshot body: %v", out)
	}

	// Stats now reflect the snapshot and the WAL.
	r, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st ctk.Stats
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	d := st.Durability
	if !d.Enabled || d.LastSnapshotLSN != 2 || d.NextLSN != 2 || d.Snapshots == 0 {
		t.Fatalf("durability stats after snapshot: %+v", d)
	}

	// Without durability: 409 + durability_disabled.
	ts2 := newTestServer(t, ctk.Options{Lambda: 0.001})
	resp, out = postJSON(t, ts2.URL+"/v1/admin/snapshot", "")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("snapshot without durability: %d %v", resp.StatusCode, out)
	}
	envelope(t, out, "durability_disabled")

	// The legacy mount has no admin surface.
	resp, _ = postJSON(t, ts.URL+"/admin/snapshot", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("legacy admin route: %d", resp.StatusCode)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	id    string
	event string
	data  string
}

// readEvents consumes the stream until n events arrived or it ends.
func readEvents(t *testing.T, body *bufio.Scanner, n int) []sseEvent {
	t.Helper()
	var (
		evs []sseEvent
		cur sseEvent
	)
	for len(evs) < n && body.Scan() {
		line := body.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				evs = append(evs, cur)
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return evs
}

// watchReq opens /v1/watch/{id} with an optional Last-Event-ID.
func watchReq(t *testing.T, url, lastEventID string) (*http.Response, *bufio.Scanner) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp, bufio.NewScanner(resp.Body)
}

// TestWatchResume covers the /v1 SSE resume semantics: a fresh watch
// gets the initial snapshot; a reconnect carrying the current Seq gets
// nothing redundant; a reconnect carrying a stale Seq gets the current
// state whose id exposes the gap.
func TestWatchResume(t *testing.T) {
	// Strong decay: a fresh document always displaces older top-k
	// entries, so every publish below is a guaranteed Seq bump.
	ts := newTestServer(t, ctk.Options{Lambda: 0.5})
	postJSON(t, ts.URL+"/v1/queries", `{"keywords":"solar panel","k":3}`)
	for i := 0; i < 3; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/documents",
			fmt.Sprintf(`{"text":"solar panel story %d","time":%d}`, i, i+1))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("publish %d: %d", i, resp.StatusCode)
		}
	}
	// Current Seq is 3 (three top-k changes).

	// Fresh watch: initial snapshot at id 3.
	resp, sc := watchReq(t, ts.URL+"/v1/watch/0", "")
	evs := readEvents(t, sc, 1)
	resp.Body.Close()
	if len(evs) != 1 || evs[0].event != "topk" || evs[0].id != "3" {
		t.Fatalf("fresh watch events: %+v", evs)
	}

	// Up-to-date reconnect: the redundant snapshot is suppressed; the
	// next event is the next real change.
	resp, sc = watchReq(t, ts.URL+"/v1/watch/0", "3")
	done := make(chan []sseEvent, 1)
	go func() { done <- readEvents(t, sc, 1) }()
	if presp, _ := postJSON(t, ts.URL+"/v1/documents", `{"text":"solar panel story four","time":10}`); presp.StatusCode != http.StatusAccepted {
		t.Fatal("publish for resume test failed")
	}
	evs = <-done
	resp.Body.Close()
	if len(evs) != 1 || evs[0].id != "4" {
		t.Fatalf("resumed watch events: %+v (want only the new seq-4 update)", evs)
	}

	// Stale reconnect: the initial snapshot arrives and its id (4) vs
	// the client's Last-Event-ID (2) exposes the dropped updates.
	resp, sc = watchReq(t, ts.URL+"/v1/watch/0", "2")
	evs = readEvents(t, sc, 1)
	resp.Body.Close()
	if len(evs) != 1 || evs[0].id != "4" {
		t.Fatalf("stale-resume events: %+v", evs)
	}
	var u ctk.Update
	if err := json.Unmarshal([]byte(evs[0].data), &u); err != nil || u.Seq != 4 {
		t.Fatalf("stale-resume payload: %s (%v)", evs[0].data, err)
	}

	// Garbage Last-Event-ID: rejected with the envelope.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/watch/0", nil)
	req.Header.Set("Last-Event-ID", "not-a-seq")
	bresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	_ = json.NewDecoder(bresp.Body).Decode(&out)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad Last-Event-ID: %d", bresp.StatusCode)
	}
	envelope(t, out, "invalid_argument")

	// The legacy mount ignores Last-Event-ID entirely (no resume
	// semantics on deprecated routes): the initial snapshot always
	// arrives.
	resp, sc = watchReq(t, ts.URL+"/watch/0", "4")
	evs = readEvents(t, sc, 1)
	resp.Body.Close()
	if len(evs) != 1 || evs[0].event != "topk" {
		t.Fatalf("legacy watch with Last-Event-ID: %+v", evs)
	}
}

// TestWatchResumeAcrossRestart: Seqs persist through the durability
// layer, so a Last-Event-ID from before a restart still means the same
// thing to the restarted server.
func TestWatchResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	opts := ctk.Options{Lambda: 0.5, Durability: ctk.Durability{Dir: dir, SnapshotOps: -1}}

	e, err := ctk.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register("solar panel", 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Publish(fmt.Sprintf("solar panel story %d", i), float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: recovery reconstructs Seq 3.
	ts := newTestServer(t, opts)
	resp, sc := watchReq(t, ts.URL+"/v1/watch/0", "3")
	done := make(chan []sseEvent, 1)
	go func() { done <- readEvents(t, sc, 1) }()
	if presp, _ := postJSON(t, ts.URL+"/v1/documents", `{"text":"solar panel after restart","time":10}`); presp.StatusCode != http.StatusAccepted {
		t.Fatal("post-restart publish failed")
	}
	evs := <-done
	resp.Body.Close()
	if len(evs) != 1 || evs[0].id != "4" {
		t.Fatalf("cross-restart resume: %+v (want suppression of seq 3, delivery of 4)", evs)
	}
}

// TestV1Analyze drives the analyzer debug endpoint: the token stream
// under the engine's pipeline, the reported pipeline name, envelope
// errors for a missing parameter, and the stats report of the
// analyzer.
func TestV1Analyze(t *testing.T) {
	ts := newTestServer(t, ctk.Options{Lambda: 0.001, Analyzer: "english"})

	getJSON := func(url string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		return resp, out
	}

	resp, out := getJSON(ts.URL + "/v1/analyze?text=" + url.QueryEscape("The markets are rallying"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d: %v", resp.StatusCode, out)
	}
	if out["analyzer"] != "english" {
		t.Fatalf("analyzer = %v, want english", out["analyzer"])
	}
	toks, ok := out["tokens"].([]any)
	if !ok || len(toks) != 2 || toks[0] != "market" || toks[1] != "ralli" {
		t.Fatalf("tokens = %v, want [market ralli]", out["tokens"])
	}

	// A text that analyzes to nothing returns [], not null.
	resp, out = getJSON(ts.URL + "/v1/analyze?text=" + url.QueryEscape("the a an"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty-analysis status %d", resp.StatusCode)
	}
	if toks, ok := out["tokens"].([]any); !ok || len(toks) != 0 {
		t.Fatalf("tokens = %v (%T), want []", out["tokens"], out["tokens"])
	}

	// Missing text parameter: envelope error.
	resp, out = getJSON(ts.URL + "/v1/analyze")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing-param status %d", resp.StatusCode)
	}
	envelope(t, out, "invalid_argument")

	// The endpoint is v1-only: the legacy mount has no alias.
	resp, _ = getJSON(ts.URL + "/analyze?text=x")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("legacy /analyze status %d, want 404", resp.StatusCode)
	}

	// Stats report the pipeline.
	resp, out = getJSON(ts.URL + "/v1/stats")
	if resp.StatusCode != http.StatusOK || out["Analyzer"] != "english" {
		t.Fatalf("stats analyzer = %v (status %d), want english", out["Analyzer"], resp.StatusCode)
	}
}
