// Package server is ctkd's HTTP layer, extracted so other binaries
// (tests, future multi-node frontends) can mount the same API around
// an engine without the daemon's flag parsing and process lifecycle.
//
// The surface is versioned. The canonical routes live under /v1/:
//
//	POST   /v1/queries          {"keywords": "...", "k": 10} → {"id": 3}
//	DELETE /v1/queries/{id}                                  → 204
//	POST   /v1/documents        {"text": "...", "time": 17.5}
//	POST   /v1/documents/batch  {"texts": [...], "time": 17.5}
//	GET    /v1/results/{id}                                  → {"Seq": n, "Results": [...]}
//	GET    /v1/watch/{id}                                    → SSE stream (resumable)
//	GET    /v1/stats                                         → engine + durability counters
//	GET    /v1/healthz                                       → liveness
//	GET    /v1/analyze?text=...                              → analyzer debug: token stream
//	POST   /v1/admin/snapshot                                → on-demand online snapshot
//	GET    /v1/metrics                                       → Prometheus text exposition
//	GET    /v1/debug/vars                                    → the metrics registry as JSON
//	GET    /v1/debug/trace                                   → sampled publish stage traces
//	GET    /v1/debug/pprof/*                                 → net/http/pprof (opt-in, Options.Pprof)
//
// Every /v1 response carries an X-Request-ID header and an access-log
// line on the configured structured logger (Options.Logger).
//
// Every non-2xx /v1 response carries the uniform error envelope
//
//	{"error": {"code": "<machine_code>", "message": "..."}}
//
// including the /v1/ catch-all 404. The pre-/v1 unversioned routes are
// kept as deprecated aliases with their original flat error bodies
// ({"error": "..."}), so existing clients keep working byte-for-byte;
// new clients should use /v1 only.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/core"
)

// Options parameterizes a Server. The zero value is ready to use.
type Options struct {
	// Legacy mounts the deprecated unversioned aliases (/queries,
	// /documents, ...) beside /v1. Defaults to true; the daemon keeps
	// them on so pre-/v1 clients survive the redesign.
	Legacy *bool

	// Logger receives the structured access log and lifecycle events.
	// Nil uses slog.Default().
	Logger *slog.Logger

	// Pprof mounts net/http/pprof under /v1/debug/pprof/. Off by
	// default: profiling endpoints expose heap contents and must be an
	// explicit operator decision (ctkd -pprof).
	Pprof bool

	// DataMode labels the persistence mode in /v1/healthz: "durable",
	// "snapshot" or "memory". Empty defaults to "memory".
	DataMode string
}

// Server owns the HTTP surface around one engine: route table, the
// serialized ingestion clock, and the shutdown gate that ends watch
// streams.
type Server struct {
	mu     sync.Mutex // serializes time assignment for Publish
	engine *ctk.Engine
	start  time.Time
	base   float64 // stream time at boot; > 0 after a restore
	legacy bool
	pprof  bool
	mode   string // persistence mode label for healthz

	// Access-log state: boot-scoped request ID prefix plus a counter.
	log    *slog.Logger
	boot   string
	reqSeq atomic.Uint64

	// stopping is closed when graceful shutdown begins, ending every
	// /watch stream so a shutdown drain isn't held open by them.
	stopping chan struct{}
	stopOnce sync.Once
}

// New builds a Server around engine.
func New(engine *ctk.Engine, opts Options) *Server {
	legacy := true
	if opts.Legacy != nil {
		legacy = *opts.Legacy
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	mode := opts.DataMode
	if mode == "" {
		mode = "memory"
	}
	start := time.Now()
	return &Server{
		engine:   engine,
		start:    start,
		base:     engine.StreamTime(),
		legacy:   legacy,
		pprof:    opts.Pprof,
		mode:     mode,
		log:      logger,
		boot:     strconv.FormatInt(start.UnixNano()&0xffffff, 36),
		stopping: make(chan struct{}),
	}
}

// BeginShutdown ends the long-lived /watch streams so in-flight
// request draining can finish. Idempotent.
func (s *Server) BeginShutdown() { s.stopOnce.Do(func() { close(s.stopping) }) }

// ResultsPayload is the /results/{id} response: the snapshot plus its
// change sequence number, the same pair a /watch update carries — a
// poll and a pushed Update with equal Seq hold identical result sets.
type ResultsPayload struct {
	Seq     uint64
	Results []ctk.Result
}

// fail writes one error response; the two implementations are the /v1
// envelope and the legacy flat shape.
type fail func(w http.ResponseWriter, status int, code string, err error)

func failV1(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, map[string]any{
		"error": map[string]string{"code": code, "message": err.Error()},
	})
}

func failLegacy(w http.ResponseWriter, status int, _ string, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// Handler builds the route table: /v1 plus (when enabled) the legacy
// aliases, each mount with its own error shape and catch-all 404.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.routes(mux, "/v1", failV1)
	mux.HandleFunc("GET /v1/analyze", s.analyze)
	mux.HandleFunc("POST /v1/admin/snapshot", s.adminSnapshot)
	mux.HandleFunc("GET /v1/metrics", s.metrics)
	mux.HandleFunc("GET /v1/debug/vars", s.debugVars)
	mux.HandleFunc("GET /v1/debug/trace", s.debugTrace)
	if s.pprof {
		mountPprof(mux)
	}
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		failV1(w, http.StatusNotFound, "not_found",
			fmt.Errorf("no such endpoint: %s %s", r.Method, r.URL.Path))
	})
	if s.legacy {
		s.routes(mux, "", failLegacy)
	}
	// Root catch-all: the legacy JSON 404 shape existing clients (and
	// tests) rely on.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		failLegacy(w, http.StatusNotFound, "not_found",
			fmt.Errorf("no such endpoint: %s %s", r.Method, r.URL.Path))
	})
	// Access logging and request IDs cover /v1 only; the legacy aliases
	// pass through byte-exact.
	return s.accessLog(mux)
}

// routes mounts the shared route set under prefix with ef's error
// shape. The /v1 mount additionally gets SSE resume (Last-Event-ID)
// semantics on watch.
func (s *Server) routes(mux *http.ServeMux, prefix string, ef fail) {
	v1 := prefix == "/v1"
	mux.HandleFunc("POST "+prefix+"/queries", s.addQuery(ef))
	mux.HandleFunc("DELETE "+prefix+"/queries/{id}", s.removeQuery(ef))
	mux.HandleFunc("POST "+prefix+"/documents", s.publish(ef))
	mux.HandleFunc("POST "+prefix+"/documents/batch", s.publishBatch(ef))
	mux.HandleFunc("GET "+prefix+"/results/{id}", s.results(ef))
	mux.HandleFunc("GET "+prefix+"/watch/{id}", s.watch(ef, v1))
	mux.HandleFunc("GET "+prefix+"/stats", s.stats)
	mux.HandleFunc("GET "+prefix+"/healthz", s.healthz)
}

// now returns the server's stream clock: wall time elapsed since boot,
// offset by the stream time a restored engine had already reached so
// publications never regress.
func (s *Server) now() float64 { return s.base + time.Since(s.start).Seconds() }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// engineFailure maps an engine error to its HTTP status and machine
// code.
func engineFailure(err error) (int, string) {
	switch {
	case errors.Is(err, ctk.ErrNoTerms):
		return http.StatusBadRequest, "no_terms"
	case errors.Is(err, core.ErrUnknownQuery):
		return http.StatusNotFound, "unknown_query"
	case errors.Is(err, core.ErrRemovedQuery):
		return http.StatusNotFound, "query_removed"
	case errors.Is(err, ctk.ErrTimeRegression):
		return http.StatusConflict, "time_regression"
	case errors.Is(err, ctk.ErrClosed):
		return http.StatusServiceUnavailable, "engine_closed"
	}
	return http.StatusInternalServerError, "internal"
}

func (s *Server) addQuery(ef fail) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Keywords string `json:"keywords"`
			K        int    `json:"k"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			ef(w, http.StatusBadRequest, "bad_json", err)
			return
		}
		id, err := s.engine.Register(req.Keywords, req.K)
		if err != nil {
			status, code := engineFailure(err)
			if status == http.StatusInternalServerError {
				status, code = http.StatusBadRequest, "invalid_argument"
			}
			ef(w, status, code, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]uint32{"id": uint32(id)})
	}
}

func (s *Server) removeQuery(ef fail) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id, err := parseID(r.PathValue("id"))
		if err != nil {
			ef(w, http.StatusBadRequest, "invalid_argument", err)
			return
		}
		if err := s.engine.Unregister(id); err != nil {
			status, code := engineFailure(err)
			ef(w, status, code, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}
}

// firstBlank returns the index of the first all-whitespace text, or
// -1 when every text has content.
func firstBlank(texts []string) int {
	for i, text := range texts {
		if strings.TrimSpace(text) == "" {
			return i
		}
	}
	return -1
}

// ingest runs one publication with a serialized timestamp: reqTime
// when the client supplied one, the server clock otherwise. The
// result of pub is written as 202, engine rejections with their
// mapped status (time regressions as 409).
func (s *Server) ingest(w http.ResponseWriter, ef fail, reqTime *float64, pub func(at float64) (any, error)) {
	s.mu.Lock()
	at := s.now()
	if reqTime != nil {
		at = *reqTime
	}
	st, err := pub(at)
	s.mu.Unlock()
	if err != nil {
		status, code := engineFailure(err)
		if status == http.StatusInternalServerError {
			status, code = http.StatusConflict, "conflict"
		}
		ef(w, status, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) publish(ef fail) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Text string   `json:"text"`
			Time *float64 `json:"time,omitempty"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			ef(w, http.StatusBadRequest, "bad_json", err)
			return
		}
		if strings.TrimSpace(req.Text) == "" {
			ef(w, http.StatusBadRequest, "invalid_argument", fmt.Errorf("empty document text"))
			return
		}
		s.ingest(w, ef, req.Time, func(at float64) (any, error) {
			return s.engine.Publish(req.Text, at)
		})
	}
}

func (s *Server) publishBatch(ef fail) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Texts []string `json:"texts"`
			Time  *float64 `json:"time,omitempty"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			ef(w, http.StatusBadRequest, "bad_json", err)
			return
		}
		if len(req.Texts) == 0 {
			ef(w, http.StatusBadRequest, "invalid_argument", fmt.Errorf("empty batch"))
			return
		}
		if i := firstBlank(req.Texts); i != -1 {
			ef(w, http.StatusBadRequest, "invalid_argument", fmt.Errorf("empty document text at index %d", i))
			return
		}
		s.ingest(w, ef, req.Time, func(at float64) (any, error) {
			return s.engine.PublishBatch(req.Texts, at)
		})
	}
}

func (s *Server) results(ef fail) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id, err := parseID(r.PathValue("id"))
		if err != nil {
			ef(w, http.StatusBadRequest, "invalid_argument", err)
			return
		}
		res, seq, err := s.engine.ResultsSeq(id)
		if err != nil {
			status, code := engineFailure(err)
			ef(w, status, code, err)
			return
		}
		writeJSON(w, http.StatusOK, ResultsPayload{Seq: seq, Results: res})
	}
}

// watchBufMax bounds the per-watcher delivery buffer a client may
// request.
const watchBufMax = 1024

// watch streams a query's top-k changes as server-sent events. Each
// change arrives as
//
//	id: <seq>
//	event: topk
//	data: {"Query": 3, "Seq": 17, "Results": [...]}
//
// starting with the current snapshot. Slow consumers are coalesced to
// the latest state (gaps in Seq reveal skipped intermediates). The
// stream ends (event: end) when the query is unregistered or the
// server shuts down. ?buffer=N (1..1024, default 1) sizes the
// delivery buffer for clients that want short backlogs instead of
// pure latest-value semantics.
//
// Three optional parameters coarsen the stream per watcher, evaluated
// on the broker's drain tier (suppressed updates show up as Seq gaps,
// never as staleness — the next delivered event always carries the
// newest state):
//
//	?top_n=N           deliver only when the identity/order of the
//	                   first N results changes
//	?min_rank_change=N deliver only when some document moves ≥ N rank
//	                   positions (entering/leaving counts as a full-k
//	                   move); ORs with top_n
//	?min_interval=D    rate limit (Go duration, e.g. 500ms): at most
//	                   one delivery per D, carrying the latest state
//
// On /v1, the stream is resumable: a reconnecting client sends the
// standard Last-Event-ID header with the last Seq it saw. Seqs are
// persisted with snapshots and reconstructed by WAL replay, so the
// comparison is meaningful even across a server restart: if the
// query's state hasn't changed the redundant initial snapshot is
// suppressed, and if it has, the initial event's id exposes the gap —
// the client knows exactly whether it missed anything.
func (s *Server) watch(ef fail, resumable bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id, err := parseID(r.PathValue("id"))
		if err != nil {
			ef(w, http.StatusBadRequest, "invalid_argument", err)
			return
		}
		q := r.URL.Query()
		opts := ctk.SubscribeOptions{Buffer: 1}
		if b := q.Get("buffer"); b != "" {
			n, err := strconv.Atoi(b)
			if err != nil || n < 1 || n > watchBufMax {
				ef(w, http.StatusBadRequest, "invalid_argument", fmt.Errorf("buffer must be 1..%d", watchBufMax))
				return
			}
			opts.Buffer = n
		}
		if v := q.Get("top_n"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				ef(w, http.StatusBadRequest, "invalid_argument", fmt.Errorf("top_n must be a positive integer"))
				return
			}
			opts.TopN = n
		}
		if v := q.Get("min_rank_change"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				ef(w, http.StatusBadRequest, "invalid_argument", fmt.Errorf("min_rank_change must be a positive integer"))
				return
			}
			opts.MinRankChange = n
		}
		if v := q.Get("min_interval"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				ef(w, http.StatusBadRequest, "invalid_argument", fmt.Errorf("min_interval must be a positive duration (e.g. 500ms)"))
				return
			}
			opts.MinInterval = d
		}
		lastSeen, haveLast := uint64(0), false
		if resumable {
			if lei := r.Header.Get("Last-Event-ID"); lei != "" {
				n, err := strconv.ParseUint(lei, 10, 64)
				if err != nil {
					ef(w, http.StatusBadRequest, "invalid_argument", fmt.Errorf("bad Last-Event-ID %q", lei))
					return
				}
				lastSeen, haveLast = n, true
			}
		}
		ch, cancel, err := s.engine.SubscribeOpts(id, opts)
		if err != nil {
			status, code := engineFailure(err)
			ef(w, status, code, err)
			return
		}
		defer cancel()

		h := w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-cache")
		h.Set("X-Accel-Buffering", "no")
		rc := http.NewResponseController(w)
		// The stream deliberately outlives the server's WriteTimeout; the
		// per-event writes below fail fast if the client goes away.
		_ = rc.SetWriteDeadline(time.Time{})
		w.WriteHeader(http.StatusOK)
		if resumable {
			// Ask EventSource clients to auto-reconnect promptly; resume
			// is cheap because Last-Event-ID suppresses redundant state.
			fmt.Fprint(w, "retry: 3000\n\n")
		}
		if err := rc.Flush(); err != nil {
			return
		}
		// end tells the client this is deliberate end-of-stream (query
		// unregistered or server shutting down), not a network failure.
		end := func() {
			fmt.Fprint(w, "event: end\ndata: {}\n\n")
			_ = rc.Flush()
		}
		first := true
		for {
			select {
			case <-r.Context().Done():
				return
			case <-s.stopping:
				end()
				return
			case u, ok := <-ch:
				if !ok {
					end()
					return
				}
				if first {
					first = false
					// Resume: the primed initial snapshot is the state the
					// reconnecting client says it already has — skip it.
					// (An id ahead of the client's reveals the drop instead.)
					if haveLast && u.Seq == lastSeen {
						continue
					}
				}
				data, err := json.Marshal(u)
				if err != nil {
					return
				}
				if _, err := fmt.Fprintf(w, "id: %d\nevent: topk\ndata: %s\n\n", u.Seq, data); err != nil {
					return
				}
				if err := rc.Flush(); err != nil {
					return
				}
			}
		}
	}
}

func (s *Server) stats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Stats())
}

// buildVersion reports the main module's version as stamped by the
// build ("(devel)" for plain go build, the module version under
// go install m@v).
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// healthz reports liveness plus a summary a load balancer or operator
// can alert on, and enough build info to identify what is running:
// module version, Go toolchain and persistence mode. Served at
// GET /v1/healthz; the unversioned /healthz alias is deprecated and
// returns the same (superset) body.
func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"version":        buildVersion(),
		"go_version":     runtime.Version(),
		"data_mode":      s.mode,
		"uptime_seconds": time.Since(s.start).Seconds(),
		"stream_time":    s.engine.StreamTime(),
		"stats":          s.engine.Stats(),
	})
}

// analyze is the v1-only analyzer debug endpoint: it runs the engine's
// analysis pipeline over ?text= and returns the token stream a
// publication of the same text would be weighted on — the operator's
// answer to "why didn't this document match".
func (s *Server) analyze(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if !q.Has("text") {
		failV1(w, http.StatusBadRequest, "invalid_argument",
			fmt.Errorf("missing required query parameter \"text\""))
		return
	}
	tokens := s.engine.Analyze(q.Get("text"))
	if tokens == nil {
		tokens = []string{} // encode as [], not null
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"analyzer": s.engine.Analyzer(),
		"tokens":   tokens,
	})
}

// adminSnapshot triggers an on-demand online snapshot (v1 only). The
// snapshot runs concurrently with ingestion; the response reports the
// WAL drain point and stream time it captured.
func (s *Server) adminSnapshot(w http.ResponseWriter, _ *http.Request) {
	info, err := s.engine.Snapshot()
	if err != nil {
		if errors.Is(err, ctk.ErrNoDurability) {
			failV1(w, http.StatusConflict, "durability_disabled", err)
			return
		}
		failV1(w, http.StatusInternalServerError, "internal", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"lsn":         info.LSN,
		"stream_time": info.StreamTime,
		"path":        info.Path,
	})
}

func parseID(s string) (ctk.QueryID, error) {
	n, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad query id %q", s)
	}
	return ctk.QueryID(n), nil
}
