// Observability surface: the metrics and debug endpoints mounted under
// /v1, plus the access-log middleware that fronts every /v1 route.
//
//	GET /v1/metrics        Prometheus text exposition (hand-rolled v0.0.4)
//	GET /v1/debug/vars     the same registry as JSON (expvar-style)
//	GET /v1/debug/trace    sampled per-publish stage-timing traces
//	GET /v1/debug/pprof/*  net/http/pprof, only when Options.Pprof is set
//
// The debug endpoints read scrape-time state only — none of them touch
// the publish hot path beyond the engine's read lock.
package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"log/slog"

	"repro/internal/obs"
)

// metrics serves the registry in Prometheus text exposition format.
func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.engine.Metrics().WritePrometheus(w)
}

// debugVars serves the registry as JSON: scalars as numbers, histograms
// as count/sum/quantile summaries — the grep-able twin of /v1/metrics.
func (s *Server) debugVars(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Metrics().Vars())
}

// debugTrace serves the sampled publish traces, newest first. Each
// trace breaks one publish (or batch) into per-stage nanoseconds.
func (s *Server) debugTrace(w http.ResponseWriter, _ *http.Request) {
	traces := s.engine.Traces()
	if traces == nil {
		traces = []obs.Trace{} // tracing disabled: encode as [], not null
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":  len(traces),
		"traces": traces,
	})
}

// mountPprof exposes net/http/pprof under /v1/debug/pprof/. The index
// handler keys profiles off the path after /debug/pprof/, so the /v1
// prefix is stripped before delegating.
func mountPprof(mux *http.ServeMux) {
	mux.Handle("/v1/debug/pprof/", http.StripPrefix("/v1", http.HandlerFunc(pprof.Index)))
	mux.HandleFunc("/v1/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/v1/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/v1/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/v1/debug/pprof/trace", pprof.Trace)
}

// loggingWriter records status and body size for the access log. It
// must expose the wrapped writer via Unwrap so http.ResponseController
// (the SSE watch handler's Flush/SetWriteDeadline) still reaches the
// real connection through it.
type loggingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (l *loggingWriter) WriteHeader(code int) {
	if l.status == 0 {
		l.status = code
	}
	l.ResponseWriter.WriteHeader(code)
}

func (l *loggingWriter) Write(p []byte) (int, error) {
	if l.status == 0 {
		l.status = http.StatusOK
	}
	n, err := l.ResponseWriter.Write(p)
	l.bytes += int64(n)
	return n, err
}

func (l *loggingWriter) Unwrap() http.ResponseWriter { return l.ResponseWriter }

// quietPath reports routes whose access-log lines are demoted to Debug:
// scrapes and health probes arrive every few seconds and would drown
// the Info log.
func quietPath(path string) bool {
	return path == "/v1/metrics" || path == "/v1/healthz" ||
		strings.HasPrefix(path, "/v1/debug/")
}

// accessLog wraps the route table with per-request structured logging
// on /v1 routes only (legacy aliases predate the middleware and keep
// their byte-exact behaviour). Every /v1 response carries an
// X-Request-ID header — the client's own, when it sent one, or a
// generated boot-scoped sequential ID — and the completion line logs
// method, path, status, body bytes and duration under that ID.
func (s *Server) accessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = fmt.Sprintf("%s-%06d", s.boot, s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", id)
		lw := &loggingWriter{ResponseWriter: w}
		t0 := time.Now()
		next.ServeHTTP(lw, r)
		if lw.status == 0 {
			lw.status = http.StatusOK
		}
		level := slog.LevelInfo
		if quietPath(r.URL.Path) {
			level = slog.LevelDebug
		}
		s.log.LogAttrs(r.Context(), level, "request",
			slog.String("id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", lw.status),
			slog.Int64("bytes", lw.bytes),
			slog.Duration("duration", time.Since(t0)),
			slog.String("remote", r.RemoteAddr),
		)
	})
}
