package rangemax

// DefaultBlockSize is the block width used when none is specified. 16
// postings per block keeps the exact partial-block scans of ID-aware
// zone walks short, which profiling shows dominates MRIO's
// jump-heavy steady state.
const DefaultBlockSize = 16

// BlockMax keeps per-block maxima over the value array, in the spirit
// of block-max indexes. Queries read O(zone/B) block summaries; raising
// updates are O(1); lowering updates leave the block summary stale —
// still a valid upper bound, because values are non-increasing in this
// workload — and each block is recomputed once its staleness budget is
// exhausted.
type BlockMax struct {
	vals  []float64
	block []float64 // block summary (≥ true block max)
	stale []uint16  // lowering updates since last recompute
	b     int       // block width
	// StaleBudget is how many lowering updates a block tolerates before
	// an exact recompute. Lower values give tighter bounds, higher
	// values cheaper updates.
	StaleBudget uint16
}

// NewBlockMax builds block summaries over a copy of vals. blockSize
// must be ≥ 1; the zero value panics (configuration error).
func NewBlockMax(vals []float64, blockSize int) *BlockMax {
	if blockSize < 1 {
		panic("rangemax: block size must be ≥ 1")
	}
	n := len(vals)
	nb := (n + blockSize - 1) / blockSize
	bm := &BlockMax{
		vals:        append([]float64(nil), vals...),
		block:       make([]float64, nb),
		stale:       make([]uint16, nb),
		b:           blockSize,
		StaleBudget: 16,
	}
	for i, v := range vals {
		assertNonNegative(v)
		bm.block[i/blockSize] = maxf(bm.block[i/blockSize], v)
	}
	return bm
}

// Len returns the array length.
func (bm *BlockMax) Len() int { return len(bm.vals) }

// Max returns an upper bound of max(vals[lo:hi]): exact values for the
// partial edge blocks, (possibly stale) block summaries for interior
// blocks.
func (bm *BlockMax) Max(lo, hi int) float64 {
	lo, hi, ok := clamp(lo, hi, len(bm.vals))
	if !ok {
		return 0
	}
	first, last := lo/bm.b, (hi-1)/bm.b
	if first == last {
		// Zone inside one block: scan exactly; it is at most B wide.
		return bruteMax(bm.vals, lo, hi)
	}
	m := bruteMax(bm.vals, lo, (first+1)*bm.b) // partial head
	for b := first + 1; b < last; b++ {
		m = maxf(m, bm.block[b])
	}
	return maxf(m, bruteMax(bm.vals, last*bm.b, hi)) // partial tail
}

// Update sets vals[pos] = v. Raises propagate to the block summary
// immediately (keeping it an upper bound); lowers burn staleness budget
// and eventually trigger an exact block recompute.
func (bm *BlockMax) Update(pos int, v float64) {
	assertNonNegative(v)
	old := bm.vals[pos]
	bm.vals[pos] = v
	b := pos / bm.b
	switch {
	case v >= bm.block[b]:
		bm.block[b] = v
		bm.stale[b] = 0
	case old >= bm.block[b] || v < old:
		bm.stale[b]++
		if bm.stale[b] >= bm.StaleBudget {
			bm.recompute(b)
		}
	}
}

// recompute restores the exact maximum of block b.
func (bm *BlockMax) recompute(b int) {
	lo := b * bm.b
	hi := lo + bm.b
	if hi > len(bm.vals) {
		hi = len(bm.vals)
	}
	bm.block[b] = bruteMax(bm.vals, lo, hi)
	bm.stale[b] = 0
}

// Append grows the array by one value. The append-only delta segment
// uses this to keep skip data in lockstep with posting appends. A new
// value can only raise (never lower) its block's maximum, so the tail
// summary stays an exact-or-over bound without touching staleness.
func (bm *BlockMax) Append(v float64) {
	assertNonNegative(v)
	pos := len(bm.vals)
	bm.vals = append(bm.vals, v)
	b := pos / bm.b
	if b == len(bm.block) {
		bm.block = append(bm.block, v)
		bm.stale = append(bm.stale, 0)
		return
	}
	if v >= bm.block[b] {
		bm.block[b] = v
		bm.stale[b] = 0
	}
}

// NumBlocks returns how many (possibly partial) blocks cover the array.
func (bm *BlockMax) NumBlocks() int { return len(bm.block) }

// Tighten recomputes every block summary exactly. The monitor calls it
// after rebase sweeps, when every ratio changed at once.
func (bm *BlockMax) Tighten() {
	for b := range bm.block {
		bm.recompute(b)
	}
}

// BlockSize returns the block width.
func (bm *BlockMax) BlockSize() int { return bm.b }

// Value returns the exact current value at pos.
func (bm *BlockMax) Value(pos int) float64 { return bm.vals[pos] }

// Summary returns block b's (possibly stale, never under) maximum.
// Callers doing ID-aware zone walks read summaries directly instead of
// going through position-range Max.
func (bm *BlockMax) Summary(b int) float64 { return bm.block[b] }
