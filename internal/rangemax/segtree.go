package rangemax

// SegTree is an iterative array-backed segment tree answering exact
// range-maximum queries in O(log n) with O(log n) point updates. It is
// the reference UB* implementation: always exact, no staleness.
type SegTree struct {
	n    int
	tree []float64 // tree[n+i] = vals[i]; tree[i] = max of children
}

// NewSegTree builds a tree over a copy of vals in O(n).
func NewSegTree(vals []float64) *SegTree {
	n := len(vals)
	t := &SegTree{n: n, tree: make([]float64, 2*n)}
	for i, v := range vals {
		assertNonNegative(v)
		t.tree[n+i] = v
	}
	for i := n - 1; i >= 1; i-- {
		t.tree[i] = maxf(t.tree[2*i], t.tree[2*i+1])
	}
	return t
}

// Len returns the array length.
func (t *SegTree) Len() int { return t.n }

// segTreeScanMax is the range width below which Max scans the leaves
// directly: a handful of contiguous float64 loads beats a tree descent
// (two branchy paths of ~log n levels each) both in instructions and
// in locality. The zone walks of the ID-ordered algorithms extend a
// few postings at a time, so this is their common case.
const segTreeScanMax = 16

// Max returns the exact maximum over [lo, hi), clamped; empty → 0.
func (t *SegTree) Max(lo, hi int) float64 {
	lo, hi, ok := clamp(lo, hi, t.n)
	if !ok {
		return 0
	}
	m := 0.0
	if hi-lo <= segTreeScanMax {
		for _, v := range t.tree[t.n+lo : t.n+hi] {
			if v > m {
				m = v
			}
		}
		return m
	}
	for lo, hi = lo+t.n, hi+t.n; lo < hi; lo, hi = lo>>1, hi>>1 {
		if lo&1 == 1 {
			m = maxf(m, t.tree[lo])
			lo++
		}
		if hi&1 == 1 {
			hi--
			m = maxf(m, t.tree[hi])
		}
	}
	return m
}

// Update sets position pos to v and repairs the path to the root,
// stopping at the first ancestor whose maximum is unaffected (the
// common case when one of many postings moves below its list's max).
func (t *SegTree) Update(pos int, v float64) {
	assertNonNegative(v)
	i := pos + t.n
	t.tree[i] = v
	for i >>= 1; i >= 1; i >>= 1 {
		m := maxf(t.tree[2*i], t.tree[2*i+1])
		if t.tree[i] == m {
			return
		}
		t.tree[i] = m
	}
}

// Value returns the current value at pos (exact, for tests and
// debugging).
func (t *SegTree) Value(pos int) float64 { return t.tree[pos+t.n] }
