package rangemax

import "math/bits"

// DefaultRebuildBudget is how many lowering updates a Sparse snapshot
// absorbs before it is rebuilt.
const DefaultRebuildBudget = 4096

// Sparse answers range-maximum queries in O(1) from an immutable
// sparse-table snapshot. Updates accumulate in the live array; the
// snapshot is rebuilt after a budget of lowering updates, or
// immediately when an update raises a value above its snapshot (which
// would otherwise invalidate the upper-bound property).
//
// This trades the tightest bounds for the cheapest queries: between
// rebuilds, zone bounds may be loose but are never wrong.
type Sparse struct {
	vals    []float64   // live values
	table   [][]float64 // table[j][i] = max vals[i : i+2^j) at snapshot time
	pending int         // lowering updates since last rebuild
	// RebuildBudget is the lowering-update budget between rebuilds.
	RebuildBudget int
}

// NewSparse builds a snapshot over a copy of vals.
func NewSparse(vals []float64, rebuildBudget int) *Sparse {
	if rebuildBudget < 1 {
		panic("rangemax: rebuild budget must be ≥ 1")
	}
	s := &Sparse{vals: append([]float64(nil), vals...), RebuildBudget: rebuildBudget}
	for _, v := range vals {
		assertNonNegative(v)
	}
	s.rebuild()
	return s
}

// rebuild recomputes the sparse table from the live values.
func (s *Sparse) rebuild() {
	n := len(s.vals)
	levels := 1
	if n > 1 {
		levels = bits.Len(uint(n)) // ceil(log2(n))+1 is enough
	}
	s.table = make([][]float64, levels)
	s.table[0] = append([]float64(nil), s.vals...)
	for j := 1; j < levels; j++ {
		w := 1 << j
		if n-w+1 <= 0 {
			s.table = s.table[:j]
			break
		}
		prev := s.table[j-1]
		row := make([]float64, n-w+1)
		for i := range row {
			row[i] = maxf(prev[i], prev[i+w/2])
		}
		s.table[j] = row
	}
	s.pending = 0
}

// Len returns the array length.
func (s *Sparse) Len() int { return len(s.vals) }

// Max returns an upper bound of max(vals[lo:hi]) from the snapshot.
func (s *Sparse) Max(lo, hi int) float64 {
	lo, hi, ok := clamp(lo, hi, len(s.vals))
	if !ok {
		return 0
	}
	j := bits.Len(uint(hi-lo)) - 1 // floor(log2(width))
	if j >= len(s.table) {
		j = len(s.table) - 1
	}
	w := 1 << j
	return maxf(s.table[j][lo], s.table[j][hi-w])
}

// Update sets vals[pos] = v. Raising above the snapshot value forces an
// immediate rebuild to preserve the upper-bound property; lowering is
// deferred until the budget is spent.
func (s *Sparse) Update(pos int, v float64) {
	assertNonNegative(v)
	snap := s.table[0][pos]
	s.vals[pos] = v
	if v > snap {
		s.rebuild()
		return
	}
	if v < snap {
		s.pending++
		if s.pending >= s.RebuildBudget {
			s.rebuild()
		}
	}
}

// Tighten forces an immediate rebuild, restoring exact bounds.
func (s *Sparse) Tighten() { s.rebuild() }
