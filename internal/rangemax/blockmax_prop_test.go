package rangemax

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestBlockMaxStalenessProperty drives BlockMax with arbitrary
// interleavings of raising updates, lowering updates, appends, and
// Tighten calls, checking after every operation that Max(lo,hi) never
// drops below the true maximum of the shadow array — including ranges
// that end in a partial edge block, and runs of lowering updates long
// enough to exhaust StaleBudget several times over.
func TestBlockMaxStalenessProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Deliberately awkward sizes: n is rarely a multiple of b, so
		// the final block is partial; tiny budgets force recomputes.
		b := 1 + r.Intn(7)
		n := 1 + r.Intn(100)
		vals := randVals(r, n)
		bm := NewBlockMax(vals, b)
		bm.StaleBudget = uint16(1 + r.Intn(4))
		ref := refArray(append([]float64(nil), vals...))
		for op := 0; op < 400; op++ {
			switch r.Intn(10) {
			case 0, 1: // raise
				pos := r.Intn(len(ref))
				v := ref[pos] + r.Float64()*50
				bm.Update(pos, v)
				ref[pos] = v
			case 2: // append
				v := r.Float64() * 100
				if r.Intn(8) == 0 {
					v = math.Inf(1)
				}
				bm.Append(v)
				ref = append(ref, v)
			case 3: // tighten: summaries become exact, stay exact-or-over
				bm.Tighten()
			default: // lower — the staleness-producing path
				pos := r.Intn(len(ref))
				v := ref[pos] * r.Float64()
				bm.Update(pos, v)
				ref[pos] = v
			}
			if bm.Len() != len(ref) {
				t.Logf("seed %d: Len %d vs shadow %d", seed, bm.Len(), len(ref))
				return false
			}
			lo := r.Intn(len(ref) + 1)
			hi := lo + r.Intn(len(ref)+1-lo)
			got, want := bm.Max(lo, hi), ref.max(lo, hi)
			if got < want-1e-12 && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Logf("seed %d op %d: Max(%d,%d) = %v below true max %v (b=%d budget=%d)",
					seed, op, lo, hi, got, want, b, bm.StaleBudget)
				return false
			}
			// Per-block summaries are themselves upper bounds; after a
			// Tighten with no intervening lowers they are exact — checked
			// opportunistically on the last block, which is often partial.
			nb := bm.NumBlocks()
			blo := (nb - 1) * bm.BlockSize()
			if s := bm.Summary(nb - 1); s < ref.max(blo, len(ref))-1e-12 {
				t.Logf("seed %d: tail summary %v below true %v", seed, s, ref.max(blo, len(ref)))
				return false
			}
		}
		bm.Tighten()
		for trial := 0; trial < 30; trial++ {
			lo := r.Intn(len(ref) + 1)
			hi := lo + r.Intn(len(ref)+1-lo)
			got, want := bm.Max(lo, hi), ref.max(lo, hi)
			// After Tighten every summary is exact and edge blocks are
			// scanned exactly, so Max is the true max.
			if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Logf("seed %d post-Tighten: Max(%d,%d) = %v, want %v", seed, lo, hi, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBlockMaxAppendGrowth pins down the block-boundary mechanics of
// Append: growing into a fresh block allocates exactly one summary, and
// appends into a partial block only ever raise its summary.
func TestBlockMaxAppendGrowth(t *testing.T) {
	bm := NewBlockMax(nil, 4)
	if bm.Len() != 0 || bm.NumBlocks() != 0 {
		t.Fatalf("empty BlockMax: len=%d blocks=%d", bm.Len(), bm.NumBlocks())
	}
	for i := 0; i < 10; i++ {
		bm.Append(float64(i))
		wantBlocks := i/4 + 1
		if bm.Len() != i+1 || bm.NumBlocks() != wantBlocks {
			t.Fatalf("after %d appends: len=%d blocks=%d (want %d)", i+1, bm.Len(), bm.NumBlocks(), wantBlocks)
		}
		if got := bm.Summary(bm.NumBlocks() - 1); got != float64(i) {
			t.Fatalf("tail summary %v after appending %d", got, i)
		}
	}
	if got := bm.Max(0, 10); got != 9 {
		t.Fatalf("Max over appended array = %v", got)
	}
	// A lower value appended into a partial block must not lower the
	// summary.
	bm.Append(0.5)
	if got := bm.Summary(2); got != 9 {
		t.Fatalf("summary lowered by append: %v", got)
	}
	// An Inf append is visible immediately.
	bm.Append(math.Inf(1))
	if got := bm.Max(0, bm.Len()); !math.IsInf(got, 1) {
		t.Fatalf("Inf append not visible: %v", got)
	}
}
