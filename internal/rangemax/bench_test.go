package rangemax

import (
	"math/rand"
	"testing"
)

func benchVals(n int) []float64 {
	r := rand.New(rand.NewSource(3))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.Float64() * 10
	}
	return vals
}

func benchMax(b *testing.B, m Maxer) {
	n := m.Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := (i * 31) % n
		hi := lo + 1 + (i*17)%64
		m.Max(lo, hi)
	}
}

func benchUpdate(b *testing.B, m Maxer) {
	vals := benchVals(m.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos := (i * 31) % m.Len()
		m.Update(pos, vals[pos]*0.999) // lowering, the production pattern
	}
}

func BenchmarkSegTreeMax(b *testing.B) { benchMax(b, NewSegTree(benchVals(100000))) }
func BenchmarkBlockMaxMax(b *testing.B) {
	benchMax(b, NewBlockMax(benchVals(100000), DefaultBlockSize))
}
func BenchmarkSparseMax(b *testing.B) {
	benchMax(b, NewSparse(benchVals(100000), DefaultRebuildBudget))
}
func BenchmarkSegTreeUpdate(b *testing.B) { benchUpdate(b, NewSegTree(benchVals(100000))) }
func BenchmarkBlockMaxUpdate(b *testing.B) {
	benchUpdate(b, NewBlockMax(benchVals(100000), DefaultBlockSize))
}
func BenchmarkSparseUpdate(b *testing.B) {
	benchUpdate(b, NewSparse(benchVals(100000), DefaultRebuildBudget))
}
