package rangemax

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// refArray mirrors updates so tests can compute exact maxima.
type refArray []float64

func (r refArray) max(lo, hi int) float64 {
	if lo < 0 {
		lo = 0
	}
	if hi > len(r) {
		hi = len(r)
	}
	if lo >= hi {
		return 0
	}
	return bruteMax(r, lo, hi)
}

func randVals(r *rand.Rand, n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.Float64() * 100
	}
	return vals
}

func TestSegTreeExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		vals := randVals(r, n)
		st := NewSegTree(vals)
		ref := refArray(append([]float64(nil), vals...))
		for op := 0; op < 200; op++ {
			if r.Intn(3) == 0 { // arbitrary update: raise or lower
				pos := r.Intn(n)
				v := r.Float64() * 100
				st.Update(pos, v)
				ref[pos] = v
			}
			lo := r.Intn(n + 1)
			hi := r.Intn(n + 2)
			if st.Max(lo, hi) != ref.max(lo, hi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSegTreeValue(t *testing.T) {
	st := NewSegTree([]float64{1, 5, 3})
	if st.Value(1) != 5 {
		t.Fatalf("Value(1) = %v", st.Value(1))
	}
	st.Update(1, 2)
	if st.Value(1) != 2 {
		t.Fatalf("Value after update = %v", st.Value(1))
	}
	if st.Max(0, 3) != 3 {
		t.Fatalf("Max after lowering = %v", st.Max(0, 3))
	}
}

func TestSegTreeInf(t *testing.T) {
	st := NewSegTree([]float64{1, math.Inf(1), 3})
	if !math.IsInf(st.Max(0, 3), 1) {
		t.Fatal("Inf not propagated")
	}
	st.Update(1, 2)
	if st.Max(0, 3) != 3 {
		t.Fatalf("Max after clearing Inf = %v", st.Max(0, 3))
	}
}

func TestEmptyRangeAndClamping(t *testing.T) {
	for _, kind := range []Kind{KindSegTree, KindBlock, KindSparse} {
		m := New(kind, []float64{4, 2, 9})
		if got := m.Max(2, 2); got != 0 {
			t.Errorf("%v: empty range = %v", kind, got)
		}
		if got := m.Max(-5, 100); got != 9 {
			t.Errorf("%v: clamped full range = %v", kind, got)
		}
		if got := m.Max(5, 2); got != 0 {
			t.Errorf("%v: inverted range = %v", kind, got)
		}
		if m.Len() != 3 {
			t.Errorf("%v: Len = %d", kind, m.Len())
		}
	}
}

// monotoneScenario drives any Maxer with only lowering updates (the
// production pattern: S_k never decreases, ratios never increase) and
// checks the upper-bound property plus eventual exactness after
// Tighten.
func monotoneScenario(t *testing.T, mk func([]float64) Maxer, tighten func(Maxer)) {
	t.Helper()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(400)
		vals := randVals(r, n)
		m := mk(vals)
		ref := refArray(append([]float64(nil), vals...))
		for op := 0; op < 300; op++ {
			if r.Intn(2) == 0 {
				pos := r.Intn(n)
				v := ref[pos] * r.Float64() // lower only
				m.Update(pos, v)
				ref[pos] = v
			}
			lo := r.Intn(n + 1)
			hi := lo + r.Intn(n+1-lo)
			got := m.Max(lo, hi)
			want := ref.max(lo, hi)
			if got < want-1e-12 { // never below the true max
				t.Logf("seed %d: bound %v below true max %v on [%d,%d)", seed, got, want, lo, hi)
				return false
			}
		}
		if tighten != nil {
			tighten(m)
			for trial := 0; trial < 50; trial++ {
				lo := r.Intn(n + 1)
				hi := lo + r.Intn(n+1-lo)
				got, want := m.Max(lo, hi), ref.max(lo, hi)
				// After tightening, interior block summaries are exact;
				// bounds may still be coarse across block boundaries for
				// BlockMax, but a one-block or aligned range is exact.
				if got < want-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockMaxUpperBound(t *testing.T) {
	monotoneScenario(t,
		func(vals []float64) Maxer { return NewBlockMax(vals, 16) },
		func(m Maxer) { m.(*BlockMax).Tighten() })
}

func TestSparseUpperBound(t *testing.T) {
	monotoneScenario(t,
		func(vals []float64) Maxer { return NewSparse(vals, 64) },
		func(m Maxer) { m.(*Sparse).Tighten() })
}

func TestBlockMaxExactWithinBlock(t *testing.T) {
	bm := NewBlockMax([]float64{5, 1, 8, 2, 9, 3}, 3)
	// Range inside one block is scanned exactly even after staleness.
	bm.Update(2, 0.5)
	if got := bm.Max(1, 3); got != 1 {
		t.Fatalf("within-block Max = %v, want 1 (exact)", got)
	}
}

func TestBlockMaxRaiseImmediate(t *testing.T) {
	bm := NewBlockMax([]float64{1, 1, 1, 1}, 2)
	bm.Update(3, 50)
	if got := bm.Max(0, 4); got != 50 {
		t.Fatalf("raise not visible: %v", got)
	}
}

func TestBlockMaxStaleBudgetRecompute(t *testing.T) {
	vals := make([]float64, 8)
	for i := range vals {
		vals[i] = 10
	}
	bm := NewBlockMax(vals, 8)
	bm.StaleBudget = 3
	// Lower the block max repeatedly; before budget exhaustion the
	// summary may be stale (but valid); after, it must be exact.
	bm.Update(0, 1)
	bm.Update(1, 1)
	if got := bm.Max(0, 8); got < 10 {
		t.Fatalf("premature tightening is fine, but bound dropped below remaining 10s: %v", got)
	}
	for i := 2; i < 8; i++ {
		bm.Update(i, 1)
	}
	// Recomputes run every StaleBudget lowering updates; drive past the
	// next boundary so the final recompute sees the all-lowered array.
	bm.Update(0, 0.5)
	bm.Update(1, 0.5)
	bm.Update(2, 0.5)
	if got := bm.block[0]; got != 1 {
		t.Fatalf("block summary not recomputed after budget: %v", got)
	}
}

func TestSparseRaiseForcesRebuild(t *testing.T) {
	s := NewSparse([]float64{1, 2, 3}, 1000)
	s.Update(0, 99) // raising must rebuild immediately
	if got := s.Max(0, 3); got != 99 {
		t.Fatalf("raise not visible: %v", got)
	}
	if got := s.Max(0, 1); got != 99 {
		t.Fatalf("point range after raise = %v", got)
	}
}

func TestSparseBudgetRebuild(t *testing.T) {
	s := NewSparse([]float64{10, 10, 10, 10}, 2)
	s.Update(0, 1)
	if got := s.Max(0, 1); got != 10 {
		t.Fatalf("before budget: snapshot should still say 10, got %v", got)
	}
	s.Update(1, 1) // budget reached → rebuild
	if got := s.Max(0, 2); got != 1 {
		t.Fatalf("after budget rebuild: %v, want 1", got)
	}
}

func TestSparseSingleElement(t *testing.T) {
	s := NewSparse([]float64{7}, 10)
	if got := s.Max(0, 1); got != 7 {
		t.Fatalf("singleton Max = %v", got)
	}
}

func TestNewKinds(t *testing.T) {
	vals := []float64{1, 2, 3}
	if _, ok := New(KindSegTree, vals).(*SegTree); !ok {
		t.Fatal("KindSegTree wrong type")
	}
	if _, ok := New(KindBlock, vals).(*BlockMax); !ok {
		t.Fatal("KindBlock wrong type")
	}
	if _, ok := New(KindSparse, vals).(*Sparse); !ok {
		t.Fatal("KindSparse wrong type")
	}
	if KindSegTree.String() != "seg" || KindBlock.String() != "block" ||
		KindSparse.String() != "sparse" || Kind(42).String() != "unknown" {
		t.Fatal("Kind.String mismatch")
	}
}

func TestGlobalMax(t *testing.T) {
	m := NewSegTree([]float64{3, 1, 4, 1, 5})
	if got := GlobalMax(m); got != 5 {
		t.Fatalf("GlobalMax = %v", got)
	}
}

func TestNegativeValuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative value accepted")
		}
	}()
	NewSegTree([]float64{-1})
}

func TestBadBlockSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero block size accepted")
		}
	}()
	NewBlockMax([]float64{1}, 0)
}

func TestBadBudgetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rebuild budget accepted")
		}
	}()
	NewSparse([]float64{1}, 0)
}
