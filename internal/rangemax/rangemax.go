// Package rangemax provides range-maximum structures over the per-list
// ratio arrays r[pos] = w/S_k(q) that MRIO's locally adaptive bounds
// UB*(i) query (Eq. 3 of the paper). The paper considers "three
// alternative implementations" of the zone bound (TKDE §5.2); this
// package implements three with distinct cost profiles:
//
//   - SegTree: exact range maxima, O(log L) query and update. Correct
//     under arbitrary updates.
//   - BlockMax: per-block maxima, O(zone/B) coarse queries with O(1)
//     raises and lazily amortized lowering.
//   - Sparse: an O(1)-query sparse-table snapshot, rebuilt on a budget.
//
// BlockMax and Sparse exploit the problem's key monotonicity: the
// inflated threshold S_k(q) never decreases, so ratios never increase,
// and a stale maximum therefore remains a *valid* (merely looser)
// upper bound. Both structures detect a raising update — which would
// break that argument — and restore exactness eagerly.
//
// All maxima are over half-open position ranges [lo, hi). Empty ranges
// return 0 (ratios are non-negative, so 0 is the identity).
package rangemax

import "math"

// Maxer answers range-maximum queries over a mutable array of
// non-negative values (+Inf allowed; it models the unserved-query
// ratio w/S_k with S_k = 0).
type Maxer interface {
	// Max returns an upper bound of max(vals[lo:hi]) — exact for
	// SegTree, possibly looser for the amortized structures. Ranges
	// are clamped to the array; empty ranges return 0.
	Max(lo, hi int) float64
	// Update sets vals[pos] = v.
	Update(pos int, v float64)
	// Len returns the array length.
	Len() int
}

// GlobalMax is a convenience for whole-array bounds (what RIO uses).
func GlobalMax(m Maxer) float64 { return m.Max(0, m.Len()) }

// clamp normalizes a query range against array length n. The returned
// ok is false for empty ranges.
func clamp(lo, hi, n int) (int, int, bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	return lo, hi, lo < hi
}

// Kind names a Maxer implementation, used by configuration and the
// ablation benchmarks.
type Kind int

const (
	// KindSegTree selects the exact segment tree.
	KindSegTree Kind = iota
	// KindBlock selects per-block maxima.
	KindBlock
	// KindSparse selects the rebuilt sparse-table snapshot.
	KindSparse
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSegTree:
		return "seg"
	case KindBlock:
		return "block"
	case KindSparse:
		return "sparse"
	default:
		return "unknown"
	}
}

// New constructs the requested implementation over a copy of vals.
func New(kind Kind, vals []float64) Maxer {
	switch kind {
	case KindBlock:
		return NewBlockMax(vals, DefaultBlockSize)
	case KindSparse:
		return NewSparse(vals, DefaultRebuildBudget)
	default:
		return NewSegTree(vals)
	}
}

// maxf returns the larger of a and b, propagating +Inf naturally.
func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// bruteMax is the reference implementation shared by tests and the
// lazy rebuild paths.
func bruteMax(vals []float64, lo, hi int) float64 {
	m := 0.0
	for _, v := range vals[lo:hi] {
		m = maxf(m, v)
	}
	return m
}

// assertNonNegative guards the package contract in one place.
func assertNonNegative(v float64) {
	if v < 0 || math.IsNaN(v) {
		panic("rangemax: values must be non-negative and not NaN")
	}
}
